package heuristic

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/plan"
)

func TestContractedProblemGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	q := randomQuery(8, 3, rng)
	m := cost.DefaultModel()
	groups, sets := baseScans(q, m)
	// Merge {0,1} and {2,3} into composite units.
	j01 := m.Join(q, groups[0], groups[1])
	s01 := bitset.SetOf(8, 0, 1)
	j23 := m.Join(q, groups[2], groups[3])
	s23 := bitset.SetOf(8, 2, 3)
	units := []*plan.Node{j01, j23, groups[4], groups[5], groups[6], groups[7]}
	unitSets := []bitset.Set{s01, s23, sets[4], sets[5], sets[6], sets[7]}
	c := newContractedProblem(q, units, unitSets)

	if c.local.N() != 6 {
		t.Fatalf("contracted graph has %d nodes, want 6", c.local.N())
	}
	// Composite rows carried over.
	if c.local.Rows(0) != j01.Rows {
		t.Errorf("composite rows %v, want %v", c.local.Rows(0), j01.Rows)
	}
	// The combined selectivity between two units must equal the product of
	// base selectivities crossing them.
	wantSel := q.SelBetweenSets(s01, s23)
	gotSel := c.local.G.EdgeSel(0, 1)
	if c.local.G.HasEdge(0, 1) && math.Abs(gotSel-wantSel) > 1e-15*math.Abs(wantSel) {
		t.Errorf("contracted selectivity %v, want %v", gotSel, wantSel)
	}
}

func TestSplicePreservesSharedSubtrees(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	q := randomQuery(5, 2, rng)
	m := cost.DefaultModel()
	groups, sets := baseScans(q, m)
	c := newContractedProblem(q, groups, sets)
	// Build a local plan with wrapper leaves, splice, and check the leaves
	// are the original scan nodes (pointer identity).
	leaves := c.leafWrappers()
	inner := &plan.Node{Left: leaves[0], Right: leaves[1], Rows: 1, Cost: 1}
	outer := &plan.Node{Left: inner, Right: leaves[2], Rows: 1, Cost: 2}
	out := c.splice(outer)
	if out.Left.Left != groups[0] || out.Left.Right != groups[1] || out.Right != groups[2] {
		t.Error("splice did not substitute unit plans")
	}
}

func TestRecostProducesModelConsistentCosts(t *testing.T) {
	// Recost of an MPDP plan must reproduce the DP's own cost exactly.
	rng := rand.New(rand.NewSource(63))
	m := cost.DefaultModel()
	for trial := 0; trial < 20; trial++ {
		q := randomQuery(4+rng.Intn(8), rng.Intn(4), rng)
		p, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		r := Recost(q, m, p)
		if math.Abs(r.Cost-p.Cost) > 1e-9*math.Max(1, p.Cost) {
			t.Errorf("trial %d: Recost %.6f != original %.6f", trial, r.Cost, p.Cost)
		}
		if math.Abs(r.Rows-p.Rows) > 1e-9*math.Max(1, p.Rows) {
			t.Errorf("trial %d: Recost rows changed", trial)
		}
	}
}

func TestConnectedUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	q := randomQuery(6, 0, rng) // a tree
	_, sets := baseScans(q, cost.DefaultModel())
	if !connectedUnits(q, sets) {
		t.Error("full relation set must be connected")
	}
	// Two leaves of a tree that are not adjacent are disconnected as units.
	var leafA, leafB int = -1, -1
	for v := 0; v < 6 && leafB < 0; v++ {
		if len(q.G.Neighbors(v)) == 1 {
			if leafA < 0 {
				leafA = v
			} else if !q.G.HasEdge(leafA, v) {
				leafB = v
			}
		}
	}
	if leafB >= 0 {
		if connectedUnits(q, []bitset.Set{sets[leafA], sets[leafB]}) {
			t.Errorf("units {%d} and {%d} reported connected", leafA, leafB)
		}
	}
}

func TestInnerMPDPMatchesDirectMPDPOnBaseUnits(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	m := cost.DefaultModel()
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(4+rng.Intn(6), rng.Intn(3), rng)
		groups, sets := baseScans(q, m)
		c := newContractedProblem(q, groups, sets)
		got, _, err := innerMPDP(c, Options{Model: m, Threads: 1})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		// The contracted problem's leaf wrappers have no PK index (they are
		// "temporaries" unless single base scans), so costs can only match
		// when index information is carried through — which it is for base
		// scans. Verify equality.
		if math.Abs(got.Cost-want.Cost) > 1e-6*math.Max(1, want.Cost) {
			t.Errorf("trial %d: contracted %.4f vs direct %.4f", trial, got.Cost, want.Cost)
		}
	}
}

func TestIDP1ImprovesWithLargerK(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	sum := map[int]float64{}
	for trial := 0; trial < 10; trial++ {
		q := randomQuery(14, 4, rng)
		for _, k := range []int{3, 14} {
			p, err := IDP1(q, Options{K: k, Threads: 1})
			if err != nil {
				t.Fatal(err)
			}
			sum[k] += p.Cost
		}
	}
	if sum[14] > sum[3]*1.000001 {
		t.Errorf("IDP1 with k=n (%.4g) worse than k=3 (%.4g) in aggregate", sum[14], sum[3])
	}
}

func TestGOOHandlesTwoRelations(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	q := randomQuery(2, 0, rng)
	p, err := GOO(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Errorf("plan size %d", p.Size())
	}
}

func TestUnionDPSingleRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	q := randomQuery(1, 0, rng)
	p, err := UnionDP(q, Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !p.IsLeaf() {
		t.Error("single-relation plan must be a scan")
	}
}
