// Package heuristic implements the approximate optimizers for queries beyond
// the exact-DP limit: the baselines GOO [8], IKKBZ [14, 18], PostgreSQL's
// genetic GEQO [36] and the adaptive LinDP* of Neumann & Radke [26], plus
// the paper's heuristic contributions — IDP1/IDP2 (iterative DP [17]) with
// MPDP as the inner exact algorithm (§4.1), and the novel graph-partitioning
// UnionDP (§4.2).
//
// All heuristics operate on queries of arbitrary size (1000+ relations) via
// dynamic bitmap sets and a shared "contraction" facility that treats an
// optimized sub-plan as a single composite relation, exactly like the
// temporary tables of IDP2 and the composite nodes of UnionDP.
package heuristic

import (
	"context"
	"errors"
	"time"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/plan"
)

// Options configures a heuristic run.
type Options struct {
	// Model is the cost model; nil selects cost.DefaultModel().
	Model *cost.Model
	// K bounds the sub-problem size handed to the exact algorithm (the k of
	// IDP and UnionDP). Zero selects the paper's default of 15.
	K int
	// Deadline, when non-zero, bounds optimization time.
	Deadline time.Time
	// Ctx, when non-nil, carries caller cancellation; the heuristics abort
	// with the context's error between contraction steps.
	Ctx context.Context
	// Threads is the CPU parallelism for inner MPDP calls (0 = all cores).
	Threads int
	// Seed drives the randomized heuristics (GEQO). Zero means seed 1.
	Seed int64
	// Inner optionally overrides the exact algorithm used on contracted
	// sub-problems (default: parallel MPDP). The adaptive LinDP baseline
	// passes its linearized DP here.
	Inner InnerDP
}

// InnerDP optimizes a contracted sub-problem: groups are the current unit
// plans and sets their base-relation footprints; the returned plan must join
// exactly those units.
type InnerDP func(c *contractedProblem, opt Options) (*plan.Node, dp.Stats, error)

// ErrTimeout mirrors dp.ErrTimeout for the heuristic layer.
var ErrTimeout = dp.ErrTimeout

// ErrDisconnected mirrors dp.ErrDisconnected.
var ErrDisconnected = dp.ErrDisconnected

func (o Options) model() *cost.Model {
	if o.Model != nil {
		return o.Model
	}
	return cost.DefaultModel()
}

func (o Options) k() int {
	if o.K > 0 {
		return o.K
	}
	return 15
}

func (o Options) seed() int64 {
	if o.Seed != 0 {
		return o.Seed
	}
	return 1
}

func (o Options) expired() bool {
	return o.expiredErr() != nil
}

// expiredErr returns nil while the run may continue, the context's error
// once the caller cancelled, and ErrTimeout once the wall-clock budget
// passed.
func (o Options) expiredErr() error {
	if o.Ctx != nil {
		select {
		case <-o.Ctx.Done():
			return context.Cause(o.Ctx)
		default:
		}
	}
	if !o.Deadline.IsZero() && time.Now().After(o.Deadline) {
		return ErrTimeout
	}
	return nil
}

func (o Options) inner() InnerDP {
	if o.Inner != nil {
		return o.Inner
	}
	return innerMPDP
}

var errNoPlan = errors.New("heuristic: no plan found")
