package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"time"
)

// SlowConfig configures a serving layer's SlowLog.
type SlowConfig struct {
	// TopK bounds the in-memory ring of slowest requests (0 = default 32,
	// negative = disabled).
	TopK int
	// Threshold is the latency at or above which a request is written to
	// Log as a JSON line. Zero disables threshold logging.
	Threshold time.Duration
	// Log receives one JSON line per request at or above Threshold. Nil
	// disables threshold logging regardless of Threshold.
	Log io.Writer
}

// SlowEntry is one slow request: the identifying fields the serving layer
// knows plus the trace's phase breakdown. It is both the /v1/debug/slow
// element and the slow-query-log line.
type SlowEntry struct {
	RequestID string  `json:"request_id,omitempty"`
	Time      string  `json:"time"`
	WallUS    float64 `json:"wall_us"`
	Relations int     `json:"relations,omitempty"`
	Shape     string  `json:"shape,omitempty"`
	Algorithm string  `json:"algorithm,omitempty"`
	Backend   string  `json:"backend,omitempty"`
	Node      string  `json:"node,omitempty"`
	CacheHit  bool    `json:"cache_hit"`
	Error     string  `json:"error,omitempty"`
	Spans     []Span  `json:"spans,omitempty"`
}

// SlowLog keeps the top-K slowest requests seen (by wall time) and streams
// entries over a threshold to a JSON-lines writer. Observe is cheap for the
// common fast request: one comparison under a mutex against the current
// K-th slowest.
type SlowLog struct {
	topK      int
	threshold time.Duration

	mu      sync.Mutex
	entries []SlowEntry // sorted slowest-first, len <= topK
	w       io.Writer
	enc     *json.Encoder
}

const defaultSlowTopK = 32

// NewSlowLog builds a SlowLog from cfg. It never returns nil; a fully
// disabled config yields a log that ignores observations.
func NewSlowLog(cfg SlowConfig) *SlowLog {
	k := cfg.TopK
	if k == 0 {
		k = defaultSlowTopK
	}
	if k < 0 {
		k = 0
	}
	s := &SlowLog{topK: k, threshold: cfg.Threshold, w: cfg.Log}
	if cfg.Log != nil {
		s.enc = json.NewEncoder(cfg.Log)
	}
	return s
}

// Observe records one finished request. The entry's Time and Spans fields
// may be left empty; Observe stamps Time itself. Safe on a nil receiver.
func (s *SlowLog) Observe(e SlowEntry) {
	if s == nil {
		return
	}
	wall := time.Duration(e.WallUS * float64(time.Microsecond))
	e.Time = time.Now().UTC().Format(time.RFC3339Nano)

	s.mu.Lock()
	if s.topK > 0 && (len(s.entries) < s.topK || e.WallUS > s.entries[len(s.entries)-1].WallUS) {
		s.entries = append(s.entries, e)
		sort.SliceStable(s.entries, func(i, j int) bool {
			return s.entries[i].WallUS > s.entries[j].WallUS
		})
		if len(s.entries) > s.topK {
			s.entries = s.entries[:s.topK]
		}
	}
	logIt := s.enc != nil && s.threshold > 0 && wall >= s.threshold
	if logIt {
		// Encode under the lock so concurrent entries cannot interleave
		// within a line; the writer is typically an os.File or buffer.
		_ = s.enc.Encode(e)
	}
	s.mu.Unlock()
}

// Slowest returns up to max entries, slowest first (all of them when
// max <= 0). Safe on a nil receiver.
func (s *SlowLog) Slowest(max int) []SlowEntry {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.entries)
	if max > 0 && max < n {
		n = max
	}
	out := make([]SlowEntry, n)
	copy(out, s.entries[:n])
	return out
}

// Threshold reports the configured slow-query threshold (0 when disabled).
func (s *SlowLog) Threshold() time.Duration {
	if s == nil {
		return 0
	}
	return s.threshold
}
