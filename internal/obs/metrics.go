package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// MetricsWriter emits Prometheus text exposition format (version 0.0.4)
// without a client library. A handler builds one per scrape, emits its
// counters/gauges/histograms, and Flushes:
//
//	mw := obs.NewMetricsWriter(w)
//	mw.Counter("mpdp_requests_total", "Requests seen.", nil, hits+misses)
//	mw.Gauge("mpdp_inflight", "Requests in flight.", nil, float64(inflight))
//	mw.Histogram("mpdp_request_seconds", "Request latency.",
//	    obs.Labels{"backend": "gpu", "outcome": "miss"}, hist)
//	mw.Flush()
//
// Repeated calls for the same metric name (different label sets) emit the
// # HELP/# TYPE header once, as the format requires.
type MetricsWriter struct {
	w      *bufio.Writer
	headed map[string]bool
	err    error
}

// Labels is one metric sample's label set; keys must be valid Prometheus
// label names, values are escaped on write.
type Labels map[string]string

// NewMetricsWriter wraps w for exposition output.
func NewMetricsWriter(w io.Writer) *MetricsWriter {
	return &MetricsWriter{w: bufio.NewWriter(w), headed: make(map[string]bool)}
}

// Flush writes any buffered output and returns the first error encountered.
func (m *MetricsWriter) Flush() error {
	if m.err != nil {
		return m.err
	}
	return m.w.Flush()
}

func (m *MetricsWriter) header(name, help, typ string) {
	if m.headed[name] {
		return
	}
	m.headed[name] = true
	fmt.Fprintf(m.w, "# HELP %s %s\n", name, escapeHelp(help))
	fmt.Fprintf(m.w, "# TYPE %s %s\n", name, typ)
}

// Counter emits one counter sample.
func (m *MetricsWriter) Counter(name, help string, labels Labels, v uint64) {
	m.header(name, help, "counter")
	fmt.Fprintf(m.w, "%s%s %d\n", name, formatLabels(labels, "", 0), v)
}

// Gauge emits one gauge sample.
func (m *MetricsWriter) Gauge(name, help string, labels Labels, v float64) {
	m.header(name, help, "gauge")
	fmt.Fprintf(m.w, "%s%s %s\n", name, formatLabels(labels, "", 0), formatFloat(v))
}

// Exposition le bounds for Histogram, in seconds: powers of 4 from 2^10ns
// (~1µs) through 2^34ns (~17s). Each bound is a power of two of nanoseconds
// ≥ 2^subBits, i.e. exactly a fine-bucket boundary of Histogram, so the
// cumulative counts below are exact, not interpolated.
var expoBoundsNS = func() []int64 {
	var b []int64
	for e := uint(10); e <= 34; e += 2 {
		b = append(b, int64(1)<<e)
	}
	return b
}()

// Histogram emits h as a cumulative-bucket Prometheus histogram: one
// `_bucket` sample per exposition bound plus `+Inf`, then `_sum` (seconds)
// and `_count`. The exposition bounds coincide with h's internal bucket
// boundaries, so each cumulative count is exact.
func (m *MetricsWriter) Histogram(name, help string, labels Labels, h *Histogram) {
	m.header(name, help, "histogram")
	if h == nil {
		h = &Histogram{}
	}
	total := h.Count()
	for _, bound := range expoBoundsNS {
		le := formatFloat(float64(bound) / 1e9)
		fmt.Fprintf(m.w, "%s_bucket%s %d\n", name, formatLabels(labels, "le", len(le))+le+`"}`, h.CountBelowBoundary(bound))
	}
	fmt.Fprintf(m.w, "%s_bucket%s %d\n", name, formatLabels(labels, "le", 4)+`+Inf"}`, total)
	fmt.Fprintf(m.w, "%s_sum%s %s\n", name, formatLabels(labels, "", 0), formatFloat(float64(h.Sum())/1e9))
	fmt.Fprintf(m.w, "%s_count%s %d\n", name, formatLabels(labels, "", 0), total)
}

// formatLabels renders a label set in sorted-key order. When extraKey is
// non-empty the returned string is left open for the caller to append the
// extra value and the closing `"}` (used for the per-bucket `le` label);
// extraLen only hints capacity.
func formatLabels(labels Labels, extraKey string, extraLen int) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.Grow(32 + extraLen)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteString(`"`)
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		return b.String()
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ValidateExposition parses body as Prometheus text exposition format and
// returns an error on the first malformed line. It checks the grammar this
// package emits (and that CI's /metrics scrape gate enforces): well-formed
// # HELP/# TYPE comments, samples of the form `name{labels} value`, TYPE
// declared before first sample of a family, histogram buckets cumulative
// and capped by +Inf == _count. Returns the set of metric family names seen.
func ValidateExposition(body string) (map[string]bool, error) {
	families := make(map[string]bool)
	typed := make(map[string]string)
	// per histogram series (name+labels sans le): last cumulative count
	lastBucket := make(map[string]uint64)
	bucketInf := make(map[string]uint64)
	counts := make(map[string]uint64)

	lineNo := 0
	for _, line := range strings.Split(body, "\n") {
		lineNo++
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment: %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: malformed TYPE: %q", lineNo, line)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q", lineNo, fields[3])
				}
				typed[fields[2]] = fields[3]
				families[fields[2]] = true
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && typed[base] == "histogram" {
				family = base
				break
			}
		}
		if _, ok := typed[family]; !ok {
			return nil, fmt.Errorf("line %d: sample %q before its # TYPE", lineNo, name)
		}
		families[family] = true

		if typed[family] == "histogram" {
			le, rest := splitLE(labels)
			key := family + "{" + rest + "}"
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return nil, fmt.Errorf("line %d: histogram bucket without le label", lineNo)
				}
				c := uint64(value)
				if prev, ok := lastBucket[key]; ok && c < prev {
					return nil, fmt.Errorf("line %d: non-cumulative bucket for %s: %d < %d", lineNo, key, c, prev)
				}
				lastBucket[key] = c
				if le == "+Inf" {
					bucketInf[key] = c
				}
			case strings.HasSuffix(name, "_count"):
				counts[key] = uint64(value)
			}
		}
	}
	for key, n := range counts {
		inf, ok := bucketInf[key]
		if !ok {
			return nil, fmt.Errorf("histogram %s has no +Inf bucket", key)
		}
		if inf != n {
			return nil, fmt.Errorf("histogram %s: +Inf bucket %d != _count %d", key, inf, n)
		}
	}
	return families, nil
}

// parseSample splits `name{labels} value` (labels optional) and validates
// the metric name and the value.
func parseSample(line string) (name, labels string, value float64, err error) {
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set: %q", line)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample: %q", line)
		}
		name, rest = fields[0], strings.TrimSpace(fields[1])
	}
	if !validMetricName(name) {
		return "", "", 0, fmt.Errorf("invalid metric name %q", name)
	}
	// value may be followed by an optional timestamp.
	valField := rest
	if i := strings.IndexByte(rest, ' '); i >= 0 {
		valField = rest[:i]
	}
	v, perr := parseValue(valField)
	if perr != nil {
		return "", "", 0, fmt.Errorf("bad value %q: %v", valField, perr)
	}
	return name, labels, v, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return 0, nil
	}
	return strconv.ParseFloat(s, 64)
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitLE pulls the le="..." pair out of a rendered label set, returning its
// value and the remaining labels (used to key histogram series).
func splitLE(labels string) (le, rest string) {
	var kept []string
	for _, part := range splitLabels(labels) {
		if v, ok := strings.CutPrefix(part, `le="`); ok {
			le = strings.TrimSuffix(v, `"`)
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ",")
}

// splitLabels splits a label body on commas outside quoted values.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var parts []string
	var b strings.Builder
	inQuote := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\\' && inQuote && i+1 < len(s):
			b.WriteByte(c)
			i++
			b.WriteByte(s[i])
			continue
		case c == '"':
			inQuote = !inQuote
		case c == ',' && !inQuote:
			parts = append(parts, b.String())
			b.Reset()
			continue
		}
		b.WriteByte(c)
	}
	if b.Len() > 0 {
		parts = append(parts, b.String())
	}
	return parts
}
