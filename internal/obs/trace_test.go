package obs

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestTraceNilSafety(t *testing.T) {
	// The whole point of the nil-receiver contract: uninstrumented paths
	// call every method on a nil trace without panicking or allocgarbage.
	var tr *Trace
	done := tr.StartSpan(PhaseEnumerate)
	done()
	tr.ObserveSince(PhaseQueueWait, time.Now())
	tr.ObserveSim(PhaseGPULaunch, time.Millisecond)
	if tr.Spans() != nil || tr.WallUS() != 0 || tr.WallSpanSumUS() != 0 || tr.RequestID() != "" {
		t.Fatal("nil trace must observe nothing")
	}
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext on bare context = %v, want nil", got)
	}
	if got := FromContext(nil); got != nil { //nolint:staticcheck // nil ctx is the contract under test
		t.Fatalf("FromContext(nil) = %v, want nil", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := NewTrace("req-42")
	ctx := WithTrace(context.Background(), tr)
	got := FromContext(ctx)
	if got != tr {
		t.Fatal("trace did not round-trip through context")
	}
	if got.RequestID() != "req-42" {
		t.Fatalf("RequestID = %q", got.RequestID())
	}

	done := got.StartSpan(PhaseCacheProbe)
	time.Sleep(2 * time.Millisecond)
	done()
	got.ObserveSim(PhaseGPULaunch, 7*time.Millisecond)

	spans := got.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Phase != PhaseCacheProbe || spans[0].Sim {
		t.Fatalf("span 0 = %+v", spans[0])
	}
	if spans[0].DurUS < 1000 {
		t.Fatalf("cache_probe span %vus, slept 2ms", spans[0].DurUS)
	}
	if spans[1].Phase != PhaseGPULaunch || !spans[1].Sim || spans[1].DurUS != 7000 {
		t.Fatalf("span 1 = %+v", spans[1])
	}
	// Sim time stays out of the wall decomposition.
	if sum := got.WallSpanSumUS(); sum >= 7000 {
		t.Fatalf("WallSpanSumUS %v includes sim time", sum)
	}
	if wall := got.WallUS(); wall < spans[0].DurUS {
		t.Fatalf("wall %vus below span duration %vus", wall, spans[0].DurUS)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	// A coalesced flight records from the worker goroutine while followers
	// record their own waits; run under -race this is the real test.
	tr := NewTrace("concurrent")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.ObserveSince(PhaseCoalesceWait, time.Now())
			}
		}()
	}
	wg.Wait()
	if n := len(tr.Spans()); n != 800 {
		t.Fatalf("got %d spans, want 800", n)
	}
}
