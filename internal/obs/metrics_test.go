package obs

import (
	"strings"
	"testing"
	"time"
)

func TestMetricsWriterExposition(t *testing.T) {
	h := &Histogram{}
	h.Record(500 * time.Nanosecond) // below the first 2^10ns bound
	h.Record(2 * time.Microsecond)
	h.Record(3 * time.Millisecond)
	h.Record(20 * time.Second) // above the last 2^34ns (~17s) bound

	var sb strings.Builder
	mw := NewMetricsWriter(&sb)
	mw.Counter("mpdp_requests_total", "Requests seen.", nil, 12)
	mw.Counter("mpdp_shed_total", "Requests shed.", Labels{"reason": "queue_full"}, 3)
	mw.Gauge("mpdp_inflight", "Requests in flight.", nil, 2)
	mw.Histogram("mpdp_request_seconds", "Latency.", Labels{"backend": "gpu", "outcome": "miss"}, h)
	mw.Histogram("mpdp_request_seconds", "Latency.", Labels{"backend": "cpu-seq", "outcome": "hit"}, nil)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	body := sb.String()

	for _, want := range []string{
		"# HELP mpdp_requests_total Requests seen.\n",
		"# TYPE mpdp_requests_total counter\n",
		"mpdp_requests_total 12\n",
		`mpdp_shed_total{reason="queue_full"} 3` + "\n",
		"# TYPE mpdp_inflight gauge\n",
		"# TYPE mpdp_request_seconds histogram\n",
		`mpdp_request_seconds_bucket{backend="gpu",outcome="miss",le="+Inf"} 4` + "\n",
		`mpdp_request_seconds_count{backend="gpu",outcome="miss"} 4` + "\n",
		`mpdp_request_seconds_bucket{backend="cpu-seq",outcome="hit",le="+Inf"} 0` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, body)
		}
	}
	// The 2^10ns bound (1.024µs) admits only the 500ns sample; the 2^22ns
	// (~4.19ms) bound admits everything but the 20s sample.
	if !strings.Contains(body, `le="1.024e-06"} 1`+"\n") {
		t.Errorf("first bucket not exact:\n%s", body)
	}
	if !strings.Contains(body, `le="0.004194304"} 3`+"\n") {
		t.Errorf("2^22ns bucket not exact:\n%s", body)
	}
	// HELP/TYPE must appear once despite two Histogram calls for the family.
	if n := strings.Count(body, "# TYPE mpdp_request_seconds histogram"); n != 1 {
		t.Errorf("TYPE emitted %d times, want 1", n)
	}

	families, err := ValidateExposition(body)
	if err != nil {
		t.Fatalf("writer output failed validation: %v\n---\n%s", err, body)
	}
	for _, f := range []string{"mpdp_requests_total", "mpdp_shed_total", "mpdp_inflight", "mpdp_request_seconds"} {
		if !families[f] {
			t.Errorf("family %s not reported by validator", f)
		}
	}
}

func TestMetricsWriterLabelEscaping(t *testing.T) {
	var sb strings.Builder
	mw := NewMetricsWriter(&sb)
	mw.Gauge("g", "help", Labels{"v": "a\"b\\c\nd"}, 1)
	if err := mw.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `g{v="a\"b\\c\nd"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("got %q, want contains %q", sb.String(), want)
	}
	if _, err := ValidateExposition(sb.String()); err != nil {
		t.Fatalf("escaped output failed validation: %v", err)
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, body := range map[string]string{
		"sample before TYPE":  "foo 1\n",
		"bad metric name":     "# TYPE 9bad counter\n9bad 1\n",
		"bad value":           "# TYPE foo counter\nfoo abc\n",
		"unterminated labels": "# TYPE foo counter\nfoo{a=\"b\" 1\n",
		"non-cumulative buckets": "# TYPE h histogram\n" +
			`h_bucket{le="0.001"} 5` + "\n" +
			`h_bucket{le="0.01"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\n" +
			"h_sum 1\nh_count 5\n",
		"inf != count": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\n" +
			"h_sum 1\nh_count 5\n",
		"missing inf": "# TYPE h histogram\n" +
			`h_bucket{le="0.1"} 4` + "\n" +
			"h_sum 1\nh_count 4\n",
		"unknown type": "# TYPE foo thingy\nfoo 1\n",
	} {
		if _, err := ValidateExposition(body); err == nil {
			t.Errorf("%s: validator accepted malformed body:\n%s", name, body)
		}
	}
}

func TestExpoBoundsAreBucketBoundaries(t *testing.T) {
	// The exactness claim of MetricsWriter.Histogram: every exposition
	// bound must itself be a fine-bucket low bound, so CountBelowBoundary
	// counts whole buckets only.
	for _, b := range expoBoundsNS {
		idx := bucketIdx(b)
		if bucketLow(idx) != b {
			t.Errorf("exposition bound %d is inside bucket %d [%d, ...), not on a boundary",
				b, idx, bucketLow(idx))
		}
	}
}
