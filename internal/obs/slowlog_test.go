package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSlowLogTopK(t *testing.T) {
	s := NewSlowLog(SlowConfig{TopK: 3})
	for _, us := range []float64{100, 900, 50, 700, 300, 800} {
		s.Observe(SlowEntry{RequestID: "r", WallUS: us})
	}
	got := s.Slowest(0)
	if len(got) != 3 {
		t.Fatalf("kept %d entries, want 3", len(got))
	}
	for i, want := range []float64{900, 800, 700} {
		if got[i].WallUS != want {
			t.Fatalf("entry %d = %v us, want %v (slowest-first)", i, got[i].WallUS, want)
		}
	}
	if got := s.Slowest(2); len(got) != 2 || got[0].WallUS != 900 {
		t.Fatalf("Slowest(2) = %+v", got)
	}
	if s.Slowest(0)[0].Time == "" {
		t.Fatal("Observe must stamp Time")
	}
}

func TestSlowLogThresholdJSONL(t *testing.T) {
	var sb strings.Builder
	s := NewSlowLog(SlowConfig{
		TopK:      4,
		Threshold: 5 * time.Millisecond,
		Log:       &sb,
	})
	s.Observe(SlowEntry{RequestID: "fast", WallUS: 1000})
	s.Observe(SlowEntry{
		RequestID: "slow-1",
		WallUS:    12000,
		Relations: 20,
		Backend:   "cpu-parallel",
		Spans:     []Span{{Phase: PhaseEnumerate, DurUS: 11000}},
	})
	s.Observe(SlowEntry{RequestID: "slow-2", WallUS: 6000, Error: "deadline exceeded"})

	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var lines []SlowEntry
	for sc.Scan() {
		var e SlowEntry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, e)
	}
	if len(lines) != 2 {
		t.Fatalf("logged %d lines, want 2 (fast request stays out)", len(lines))
	}
	if lines[0].RequestID != "slow-1" || lines[0].Spans[0].Phase != PhaseEnumerate {
		t.Fatalf("line 0 = %+v", lines[0])
	}
	if lines[1].Error != "deadline exceeded" {
		t.Fatalf("line 1 = %+v", lines[1])
	}
	if s.Threshold() != 5*time.Millisecond {
		t.Fatalf("Threshold = %v", s.Threshold())
	}
}

func TestSlowLogDisabled(t *testing.T) {
	var nilLog *SlowLog
	nilLog.Observe(SlowEntry{WallUS: 1})
	if got := nilLog.Slowest(0); got != nil {
		t.Fatalf("nil SlowLog returned %+v", got)
	}
	off := NewSlowLog(SlowConfig{TopK: -1})
	off.Observe(SlowEntry{WallUS: 99})
	if got := off.Slowest(0); len(got) != 0 {
		t.Fatalf("disabled SlowLog kept %+v", got)
	}
}
