package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram is a lock-free HDR-style log-linear latency histogram: each
// power-of-two octave of nanoseconds is split into 16 linear sub-buckets,
// bounding the relative quantile error at 1/16 (6.25%) across the full
// nanosecond-to-hours range in ~8KB of counters. Record is a single atomic
// add, cheap enough to sit on the serving path without perturbing the
// measurement.
//
// Because every Histogram uses the same fixed bucket layout, histograms
// merge losslessly by bucket-wise addition (Merge): the cluster coordinator
// can sum per-node histograms and report cluster-wide quantiles with the
// same error bound as any single node's.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

const (
	subBits  = 4
	subCount = 1 << subBits // linear sub-buckets per octave
	// 16 exact buckets below 2^4, then 16 per octave up to 2^63.
	histBuckets = subCount + (63-subBits)*subCount
)

// bucketIdx maps a nanosecond value to its bucket.
func bucketIdx(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subCount {
		return int(v)
	}
	k := bits.Len64(uint64(v)) - 1 // octave: 2^k <= v < 2^(k+1), k >= subBits
	sub := int(v>>(uint(k)-subBits)) - subCount
	idx := subCount + (k-subBits)*subCount + sub
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketLow returns the smallest value mapping to bucket idx; together with
// the next bucket's low bound it brackets every recorded value.
func bucketLow(idx int) int64 {
	if idx < subCount {
		return int64(idx)
	}
	rem := idx - subCount
	k := rem/subCount + subBits
	sub := rem % subCount
	return int64(subCount+sub) << (uint(k) - subBits)
}

// Record adds one latency observation.
func (h *Histogram) Record(d time.Duration) {
	v := d.Nanoseconds()
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Merge adds other's observations into h, bucket by bucket. Both histograms
// share the fixed bucket layout, so the merge is lossless: quantiles of the
// merged histogram equal quantiles of one histogram fed both streams.
// Merging a histogram that is concurrently recording gives a consistent-
// enough monitoring view (each bucket is read atomically; the set is not
// one cut), the same contract as Quantile.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := 0; i < histBuckets; i++ {
		if c := other.counts[i].Load(); c > 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	v := other.max.Load()
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations in nanoseconds.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Max returns the largest observation, exactly.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Mean returns the arithmetic mean of all observations.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// CountBelowBoundary returns how many observations landed in buckets that
// lie entirely below the nanosecond bound v. When v is a bucket boundary
// (as the exposition bounds of MetricsWriter.Histogram are), this is the
// exact count of observations < v, which Prometheus's inclusive le buckets
// absorb with at most one-observation-width error at the boundary itself.
func (h *Histogram) CountBelowBoundary(v int64) uint64 {
	idx := bucketIdx(v)
	var total uint64
	for i := 0; i < idx; i++ {
		total += h.counts[i].Load()
	}
	return total
}

// HistogramSnapshot is a histogram's serializable form: the non-empty
// buckets as a sparse index→count map plus the scalar tallies. Because the
// bucket layout is fixed and shared, a snapshot merges into any live
// Histogram as losslessly as Merge — it is how node-mode peers ship their
// latency distributions to the coordinator's cluster-wide rollup.
type HistogramSnapshot struct {
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	Count   uint64         `json:"count"`
	Sum     uint64         `json:"sum"`
	MaxNS   int64          `json:"max_ns"`
}

// Export copies the histogram into its serializable form. Like Merge, a
// concurrent snapshot is consistent-enough for monitoring, not one cut.
func (h *Histogram) Export() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		MaxNS: h.max.Load(),
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.counts[i].Load(); c > 0 {
			if s.Buckets == nil {
				s.Buckets = make(map[int]uint64)
			}
			s.Buckets[i] = c
		}
	}
	return s
}

// MergeSnapshot adds a snapshot's observations into h, bucket by bucket.
// Out-of-range bucket indexes (a peer from a future layout) clamp into the
// top bucket rather than being dropped, so counts still reconcile.
func (h *Histogram) MergeSnapshot(s HistogramSnapshot) {
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		if i < 0 {
			i = 0
		}
		if i >= histBuckets {
			i = histBuckets - 1
		}
		h.counts[i].Add(c)
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	v := s.MaxNS
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Quantile returns the latency at quantile q in [0,1]: the upper bound of
// the bucket holding the q-th observation (conservative — a reported p99
// is never below the true p99 by more than the 6.25% bucket width). The
// top quantile is clamped to the exact recorded max.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the target observation, 1-based.
	rank := uint64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			hi := h.max.Load()
			if i+1 < histBuckets {
				if b := bucketLow(i+1) - 1; b < hi {
					hi = b
				}
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max.Load())
}
