package obs

import (
	"context"
	"sync"
	"time"
)

// The span taxonomy: every phase name the serving stack records. Wall-time
// phases partition a request's critical path — their durations sum to the
// request's wall time (within the cost of the unspanned glue between them).
// The gpu_* phases are *modeled* device time from gpusim's accounting
// (Span.Sim is true) and deliberately do not count toward that sum: on the
// simulated backend the device work model and the wall clock are different
// clocks.
const (
	// PhaseCompile is SQL parsing/binding or wire-query materialization.
	PhaseCompile = "compile"
	// PhaseCacheProbe is canonical fingerprinting plus the plan-cache
	// lookup.
	PhaseCacheProbe = "cache_probe"
	// PhaseQueueWait is the time a cold request sat in the admission queue
	// before a worker picked it up.
	PhaseQueueWait = "queue_wait"
	// PhaseCoalesceWait is a follower's wait on an identical in-flight
	// optimization.
	PhaseCoalesceWait = "coalesce_wait"
	// PhaseRoute is shape detection plus the (algorithm, backend) routing
	// decision.
	PhaseRoute = "route"
	// PhaseEnumerate is the backend optimization run itself — the DP
	// enumeration (including any heuristic fallback retry).
	PhaseEnumerate = "enumerate"
	// PhaseMaterialize is plan-tree materialization and remapping: from the
	// worker arena into the canonical cache entry, and from the entry into
	// the caller's relation-index space.
	PhaseMaterialize = "materialize"
	// PhaseReplicate is the cluster coordinator pushing a fresh entry to
	// replica owners on the request path.
	PhaseReplicate = "replicate"

	// Modeled GPU phases (Span.Sim), from gpusim's device accounting.
	// Warp-lockstep compute is additionally broken down per kernel as
	// "gpu_" + the kernel name (gpu_unrank, gpu_filter, gpu_evaluate,
	// gpu_prune, gpu_scatter — see gpusim.Phase).
	PhaseGPULaunch   = "gpu_launch"   // kernel-launch latency
	PhaseGPUTransfer = "gpu_transfer" // per-level host↔device round trips
	PhaseGPUMemory   = "gpu_memory"   // global-memory transactions
)

// Span is one recorded phase of a request.
type Span struct {
	// Phase names the recorded phase (see the Phase* constants).
	Phase string `json:"phase"`
	// StartUS is the span's start offset from the trace's start, in
	// microseconds.
	StartUS float64 `json:"start_us"`
	// DurUS is the span's duration in microseconds. For Sim spans it is
	// modeled device time, not wall time.
	DurUS float64 `json:"dur_us"`
	// Sim marks modeled (simulated-device) time that does not count toward
	// the wall-time decomposition.
	Sim bool `json:"sim,omitempty"`
}

// Trace is a per-request span recorder. Create one with NewTrace, attach it
// to the request context with WithTrace, and recover it anywhere below with
// FromContext. All methods are safe for concurrent use (a worker goroutine
// and the caller may record into the same trace) and nil-receiver safe, so
// instrumented code needs no nil checks.
type Trace struct {
	requestID string
	start     time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts a trace anchored at time.Now. requestID joins the trace
// against the serving layer's logs (the httpapi layer passes its
// X-Request-Id).
func NewTrace(requestID string) *Trace {
	return &Trace{requestID: requestID, start: time.Now()}
}

// RequestID returns the ID the trace was created with ("" on nil traces).
func (t *Trace) RequestID() string {
	if t == nil {
		return ""
	}
	return t.requestID
}

// Begin returns the trace's start time (zero on nil traces).
func (t *Trace) Begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// WallUS returns the microseconds elapsed since the trace started.
func (t *Trace) WallUS() float64 {
	if t == nil {
		return 0
	}
	return float64(time.Since(t.start).Nanoseconds()) / 1e3
}

// StartSpan opens a wall-time span for phase and returns the closer that
// records it; defer it or call it at the phase boundary. On a nil trace the
// closer is a no-op.
func (t *Trace) StartSpan(phase string) func() {
	if t == nil {
		return func() {}
	}
	start := time.Now()
	return func() { t.add(phase, start, time.Since(start), false) }
}

// ObserveSince records a wall-time span for phase that began at start and
// ends now.
func (t *Trace) ObserveSince(phase string, start time.Time) {
	if t == nil {
		return
	}
	t.add(phase, start, time.Since(start), false)
}

// ObserveSim records a modeled-time span (simulated device work, not wall
// time); its start offset is the moment of recording.
func (t *Trace) ObserveSim(phase string, d time.Duration) {
	if t == nil {
		return
	}
	t.add(phase, time.Now(), d, true)
}

func (t *Trace) add(phase string, start time.Time, d time.Duration, sim bool) {
	s := Span{
		Phase:   phase,
		StartUS: float64(start.Sub(t.start).Nanoseconds()) / 1e3,
		DurUS:   float64(d.Nanoseconds()) / 1e3,
		Sim:     sim,
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans, in recording order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// WallSpanSumUS sums the durations of the wall-time (non-Sim) spans — the
// quantity that should approximate WallUS when every phase of the critical
// path is instrumented.
func (t *Trace) WallSpanSumUS() float64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var sum float64
	for _, s := range t.spans {
		if !s.Sim {
			sum += s.DurUS
		}
	}
	return sum
}

type traceKey struct{}

// WithTrace attaches t to the context.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace on ctx, or nil. A nil return is safe to use
// with every Trace method.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
