package obs

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistBucketRoundTrip(t *testing.T) {
	// Every bucket's low bound must map back to that bucket, and bounds
	// must be strictly increasing — the histogram's integrity invariants.
	prev := int64(-1)
	for i := 0; i < histBuckets; i++ {
		low := bucketLow(i)
		if low <= prev {
			t.Fatalf("bucket %d low %d not above previous %d", i, low, prev)
		}
		if got := bucketIdx(low); got != i {
			t.Fatalf("bucketIdx(bucketLow(%d)) = %d", i, got)
		}
		prev = low
	}
}

func TestHistQuantileError(t *testing.T) {
	// Uniform values 1..100ms: quantiles must land within the 6.25%
	// log-linear bucket width of the exact answer.
	h := &Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	for _, tc := range []struct {
		q     float64
		exact time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.95, 95 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		lo := tc.exact - tc.exact/16
		hi := tc.exact + tc.exact/8
		if got < lo || got > hi {
			t.Errorf("p%.0f = %v, want within [%v, %v]", tc.q*100, got, lo, hi)
		}
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v, want exactly 100ms", h.Max())
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d, want 100", h.Count())
	}
}

func TestHistMergeMatchesCombinedStream(t *testing.T) {
	// The property cluster rollups rely on: merge(a, b) must report the
	// same quantiles as a single histogram fed both streams — exactly the
	// same, not just within the error bound, because both sides bucket
	// identically. Streams are deliberately skewed differently (one
	// microsecond-ish node, one millisecond-ish node) so the merged
	// distribution looks like neither input.
	rng := rand.New(rand.NewSource(7))
	a, b, combined := &Histogram{}, &Histogram{}, &Histogram{}
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Int63n(int64(900*time.Microsecond))) + 50*time.Microsecond
		a.Record(d)
		combined.Record(d)
	}
	for i := 0; i < 2000; i++ {
		d := time.Duration(rng.Int63n(int64(40*time.Millisecond))) + time.Millisecond
		b.Record(d)
		combined.Record(d)
	}

	merged := &Histogram{}
	merged.Merge(a)
	merged.Merge(b)

	if merged.Count() != combined.Count() {
		t.Fatalf("merged count %d != combined %d", merged.Count(), combined.Count())
	}
	if merged.Sum() != combined.Sum() {
		t.Fatalf("merged sum %d != combined %d", merged.Sum(), combined.Sum())
	}
	if merged.Max() != combined.Max() {
		t.Fatalf("merged max %v != combined %v", merged.Max(), combined.Max())
	}
	for _, q := range []float64{0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999, 1} {
		if got, want := merged.Quantile(q), combined.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v != combined %v", q, got, want)
		}
	}
}

func TestHistMergeQuantileWithinErrorBound(t *testing.T) {
	// Belt and braces on the same property against ground truth: merged
	// quantiles must sit within the documented 6.25% relative error of the
	// exact order statistics of the union stream.
	rng := rand.New(rand.NewSource(11))
	var exact []time.Duration
	parts := make([]*Histogram, 3)
	merged := &Histogram{}
	for p := range parts {
		parts[p] = &Histogram{}
		scale := time.Duration(1<<uint(p*3)) * time.Millisecond
		for i := 0; i < 1500; i++ {
			d := time.Duration(rng.Int63n(int64(scale))) + scale/4
			parts[p].Record(d)
			exact = append(exact, d)
		}
		merged.Merge(parts[p])
	}
	sortDurations(exact)
	for _, q := range []float64{0.50, 0.95, 0.99} {
		rank := int(q*float64(len(exact)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		truth := exact[rank-1]
		got := merged.Quantile(q)
		lo := truth - truth/16
		hi := truth + truth/8
		if got < lo || got > hi {
			t.Errorf("q=%v: merged %v outside [%v, %v] around exact %v", q, got, lo, hi, truth)
		}
	}
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func TestHistCountBelowBoundary(t *testing.T) {
	h := &Histogram{}
	// Values straddling the 2^20ns (~1.05ms) exposition bound.
	below := []int64{100, 1 << 10, 1<<20 - 1}
	atOrAbove := []int64{1 << 20, 1<<20 + 1, 1 << 25}
	for _, v := range below {
		h.Record(time.Duration(v))
	}
	for _, v := range atOrAbove {
		h.Record(time.Duration(v))
	}
	if got := h.CountBelowBoundary(1 << 20); got != uint64(len(below)) {
		t.Fatalf("CountBelowBoundary(2^20) = %d, want %d", got, len(below))
	}
	if got := h.CountBelowBoundary(1 << 10); got != 1 {
		t.Fatalf("CountBelowBoundary(2^10) = %d, want 1 (only 100ns below)", got)
	}
	if got := h.CountBelowBoundary(1 << 34); got != h.Count() {
		t.Fatalf("CountBelowBoundary(2^34) = %d, want all %d", got, h.Count())
	}
}

func TestHistMergeNil(t *testing.T) {
	h := &Histogram{}
	h.Record(time.Millisecond)
	h.Merge(nil)
	if h.Count() != 1 {
		t.Fatalf("merge(nil) changed count: %d", h.Count())
	}
}
