// Package obs is the serving stack's zero-dependency observability layer:
// the measurement primitives every request-path package shares, with no
// imports outside the standard library so any layer (dp, gpusim, backend,
// service, cluster, httpapi, loadgen) can use it without cycles.
//
// Four pieces:
//
//   - Trace: a lightweight per-request span recorder carried on the
//     context. Layers record the phases they own (queue-wait, cache probe,
//     enumeration, GPU launch/transfer/cycles, plan materialization, ...)
//     into the same trace, so one request's time decomposes end to end.
//     Every method is nil-receiver safe: uninstrumented callers pay nothing.
//   - Histogram: a lock-free log-linear latency histogram (16 sub-buckets
//     per power-of-two octave, ≤6.25% relative quantile error). Histograms
//     with the same layout merge by bucket-wise addition, which is what
//     makes cluster-wide percentile rollups exact rather than approximate:
//     merge(a, b) reports the same quantiles as one histogram fed both
//     streams.
//   - MetricsWriter: a hand-rolled Prometheus text-exposition writer
//     (counters, gauges, histograms) so /metrics needs no client library.
//   - SlowLog: a bounded in-memory ring of the slowest requests with their
//     span breakdowns, plus an optional JSON-lines slow-query log above a
//     latency threshold.
//
// See OBSERVABILITY.md for the span taxonomy and metric names.
package obs
