// Package workload generates the query suites of the paper's evaluation
// (§7): synthetic star, snowflake, chain, cycle and clique queries of a
// given relation count; MusicBrainz random-walk queries over PK-FK (and non
// PK-FK) joins; and JOB-shaped queries for Fig. 11. Generation is
// deterministic for a given seed.
//
// Join selectivities are derived from the *unfiltered* primary-key
// cardinality (1/|PK|); local selections then shrink the base relations.
// This is the standard System-R estimation semantics and is what makes join
// orders differ in cost: joining through a heavily filtered dimension early
// shrinks every downstream intermediate.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

// Kind names a workload family.
type Kind string

// Workload families used across the experiments.
const (
	KindStar      Kind = "star"
	KindSnowflake Kind = "snowflake"
	KindChain     Kind = "chain"
	KindCycle     Kind = "cycle"
	KindClique    Kind = "clique"
	KindMB        Kind = "musicbrainz"
	KindJOB       Kind = "job"
)

// pkSel returns the selectivity of a PK-FK equi-join where the PK side has
// pkRows tuples before filtering: 1/pkRows.
func pkSel(pkRows float64) float64 {
	if pkRows < 1 {
		pkRows = 1
	}
	return 1 / pkRows
}

// Star returns an n-relation star query: dimension i joins the fact table on
// the dimension's primary key. Dimensions carry random selections (as in
// §7.3, "we generate queries with selections so that different join orders
// would result in different costs").
func Star(n int, rng *rand.Rand) *cost.Query {
	cat := catalog.StarCatalog(n)
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, pkSel(cat.Rels[i].Rows))
	}
	applySelections(cat.Rels[1:], rng)
	return &cost.Query{Cat: cat, G: g}
}

// Snowflake returns an n-relation snowflake query with arms of depth <= 4,
// matching the paper's synthetic snowflake workload (§7.2.1). Following
// §7.3, snowflake queries use pure PK-FK joins with no extra selections
// (the paper adds selections only to the star schema); rng is accepted for
// interface uniformity and future variations.
func Snowflake(n int, rng *rand.Rand) *cost.Query {
	_ = rng
	const depth = 4
	cat := catalog.SnowflakeCatalog(n, depth)
	shape := graph.SnowflakeN(n, depth)
	g := graph.New(n)
	for _, e := range shape.Edges {
		// The deeper endpoint is the PK side.
		pk := e.B
		if e.A > e.B {
			pk = e.A
		}
		g.AddEdge(e.A, e.B, pkSel(cat.Rels[pk].Rows))
	}
	return &cost.Query{Cat: cat, G: g}
}

// Chain returns an n-relation chain query.
func Chain(n int, rng *rand.Rand) *cost.Query {
	cat := catalog.UniformCatalog(n)
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, pkSel(math.Min(cat.Rels[i-1].Rows, cat.Rels[i].Rows)))
	}
	applySelections(cat.Rels, rng)
	return &cost.Query{Cat: cat, G: g}
}

// Cycle returns an n-relation cycle query.
func Cycle(n int, rng *rand.Rand) *cost.Query {
	cat := catalog.UniformCatalog(n)
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i-1, i, pkSel(math.Min(cat.Rels[i-1].Rows, cat.Rels[i].Rows)))
	}
	if n >= 3 {
		g.AddEdge(n-1, 0, pkSel(math.Min(cat.Rels[n-1].Rows, cat.Rels[0].Rows)))
	}
	applySelections(cat.Rels, rng)
	return &cost.Query{Cat: cat, G: g}
}

// Clique returns an n-relation clique query: every pair of relations is
// joined (equivalently, the cross-join scenario of §7.2.1).
func Clique(n int, rng *rand.Rand) *cost.Query {
	cat := catalog.UniformCatalog(n)
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, pkSel(math.Min(cat.Rels[i].Rows, cat.Rels[j].Rows))*10)
		}
	}
	applySelections(cat.Rels, rng)
	return &cost.Query{Cat: cat, G: g}
}

// applySelections shrinks each relation by a random filter factor, modeling
// local predicates. Factors span two orders of magnitude so join orders
// differ meaningfully in cost.
func applySelections(rels []catalog.Relation, rng *rand.Rand) {
	for i := range rels {
		f := math.Pow(10, -2*rng.Float64())
		rels[i].Rows = math.Max(1, rels[i].Rows*f)
	}
}

// Generate builds one query of the given family and size.
func Generate(kind Kind, n int, rng *rand.Rand) (*cost.Query, error) {
	switch kind {
	case KindStar:
		return Star(n, rng), nil
	case KindSnowflake:
		return Snowflake(n, rng), nil
	case KindChain:
		return Chain(n, rng), nil
	case KindCycle:
		return Cycle(n, rng), nil
	case KindClique:
		return Clique(n, rng), nil
	case KindMB:
		return MusicBrainzQuery(n, rng), nil
	case KindJOB:
		return nil, fmt.Errorf("workload: JOB queries are indexed, use JOBQueries")
	}
	return nil, fmt.Errorf("workload: unknown kind %q", kind)
}

// PermuteQuery relabels q's relations through perm (perm[old] = new),
// producing a structurally identical query whose relations are renamed and
// reordered — the same join problem as written by a different client.
// Canonical fingerprinting (internal/service) must treat both as one query;
// tests, examples and benchmarks use this to generate isomorphic twins.
func PermuteQuery(q *cost.Query, perm []int) *cost.Query {
	n := q.N()
	rels := make([]catalog.Relation, n)
	for i, r := range q.Cat.Rels {
		r.Name = fmt.Sprintf("renamed_%d", perm[i])
		rels[perm[i]] = r
	}
	var cat catalog.Catalog
	for _, r := range rels {
		cat.Add(r)
	}
	g := graph.New(n)
	for _, e := range q.G.Edges {
		g.AddEdge(perm[e.A], perm[e.B], e.Sel)
	}
	return &cost.Query{Cat: cat, G: g}
}
