package workload

import (
	"math"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

// JOBQuery describes one Join Order Benchmark query shape.
type JOBQuery struct {
	Name  string
	Rels  int
	Query *cost.Query
}

// jobShapes lists the 33 JOB query families with their join sizes (4-17
// relations, the largest being 17 as noted in §7.2.4). The shapes mirror
// JOB's structure: a central title/cast_info spine joined with lookup
// dimensions and link tables, several of which introduce cycles.
var jobShapes = []struct {
	name string
	n    int
	// extraCycleEdges adds that many non-tree edges, mirroring JOB queries
	// whose predicates close cycles in the join graph.
	cycles int
}{
	{"1a", 5, 1}, {"2a", 5, 0}, {"3a", 4, 0}, {"4a", 5, 0}, {"5a", 5, 1},
	{"6a", 5, 0}, {"7a", 8, 1}, {"8a", 7, 0}, {"9a", 8, 1}, {"10a", 7, 0},
	{"11a", 8, 1}, {"12a", 8, 0}, {"13a", 9, 1}, {"14a", 8, 0}, {"15a", 9, 1},
	{"16a", 8, 0}, {"17a", 7, 0}, {"18a", 7, 0}, {"19a", 10, 1}, {"20a", 10, 0},
	{"21a", 10, 1}, {"22a", 11, 1}, {"23a", 11, 0}, {"24a", 12, 1}, {"25a", 12, 0},
	{"26a", 12, 1}, {"27a", 13, 1}, {"28a", 14, 1}, {"29a", 17, 2}, {"30a", 12, 1},
	{"31a", 14, 1}, {"32a", 6, 0}, {"33a", 14, 2},
}

// imdbTables provides IMDB-like table statistics for leaf assignment.
var imdbTables = []struct {
	name string
	rows float64
}{
	{"title", 2.5e6}, {"cast_info", 36e6}, {"movie_info", 15e6},
	{"movie_keyword", 4.5e6}, {"movie_companies", 2.6e6}, {"name", 4.2e6},
	{"keyword", 134e3}, {"company_name", 235e3}, {"info_type", 113},
	{"kind_type", 7}, {"role_type", 12}, {"company_type", 4},
	{"aka_name", 900e3}, {"aka_title", 360e3}, {"char_name", 3.1e6},
	{"comp_cast_type", 4}, {"complete_cast", 135e3}, {"link_type", 18},
	{"movie_link", 30e3}, {"person_info", 2.9e6},
}

// JOBQueries materializes the 33 JOB-shaped queries. The seed controls the
// assignment of dimension sizes and predicate selectivities; the shapes
// themselves are fixed.
func JOBQueries(seed int64) []JOBQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]JOBQuery, 0, len(jobShapes))
	for _, shape := range jobShapes {
		n := shape.n
		var cat catalog.Catalog
		for i := 0; i < n; i++ {
			t := imdbTables[(i*3+shape.cycles)%len(imdbTables)]
			r := catalog.NewRelation(t.name, t.rows, 60)
			r.HasPKIndex = true
			cat.Add(r)
		}
		// Spine: title (vertex 0) with snowflake arms of depth <= 3.
		shapeGraph := graph.SnowflakeN(n, 3)
		g := graph.New(n)
		for _, e := range shapeGraph.Edges {
			pk := e.B
			if e.A > e.B {
				pk = e.A
			}
			g.AddEdge(e.A, e.B, pkSel(cat.Rels[pk].Rows))
		}
		// Cycle-closing predicates.
		for c := 0; c < shape.cycles; c++ {
			for tries := 0; tries < 64; tries++ {
				a, b := rng.Intn(n), rng.Intn(n)
				if a != b && !g.HasEdge(a, b) {
					g.AddEdge(a, b, pkSel(math.Min(cat.Rels[a].Rows, cat.Rels[b].Rows)))
					break
				}
			}
		}
		// Local predicate selections, applied after selectivity assignment.
		for i := range cat.Rels {
			cat.Rels[i].Rows = math.Max(1, cat.Rels[i].Rows*math.Pow(10, -1.2*rng.Float64()))
		}
		out = append(out, JOBQuery{Name: shape.name, Rels: n, Query: &cost.Query{Cat: cat, G: g}})
	}
	return out
}
