package workload

import (
	"fmt"
	"math"
	"math/rand"
	"strings"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
)

// MusicBrainzQuery generates an n-relation query over the MusicBrainz
// schema exactly as described in §7.2.2: "We pick a relation at random and
// then do a random walk on the graph till we get the required number of
// rels". Only PK-FK joins are used and the resulting query graph can
// contain cycles. Relation indices are renumbered to the local query space.
func MusicBrainzQuery(n int, rng *rand.Rand) *cost.Query {
	return mbQuery(n, rng, true)
}

// MusicBrainzNonPKFK generates random-walk queries whose join selectivities
// model non PK-FK predicates (§7.2.3): selectivities are drawn from the
// value-overlap model instead of 1/|PK|, which makes intermediate results —
// and therefore execution times — much larger.
func MusicBrainzNonPKFK(n int, rng *rand.Rand) *cost.Query {
	return mbQuery(n, rng, false)
}

func mbQuery(n int, rng *rand.Rand, pkfk bool) *cost.Query {
	schema := catalog.MusicBrainz()
	full := schema.Catalog
	// Schema join graph over all 56 tables.
	adj := make([][]catalog.FKEdge, full.Len())
	for _, fk := range schema.FKs {
		adj[fk.From] = append(adj[fk.From], fk)
		adj[fk.To] = append(adj[fk.To], fk)
	}

	// Start the walk inside the largest connected component so that n
	// tables are reachable (a few MusicBrainz type-lookup tables form tiny
	// satellite components).
	comp := largestComponent(full.Len(), schema.FKs)

	// Random walk until n distinct tables are collected.
	chosen := map[int]bool{}
	var order []int
	cur := comp[rng.Intn(len(comp))]
	chosen[cur] = true
	order = append(order, cur)
	guard := 0
	for len(order) < n {
		guard++
		if guard > 100000 {
			break // schema smaller than requested n; return what we have
		}
		es := adj[cur]
		e := es[rng.Intn(len(es))]
		next := e.From
		if next == cur {
			next = e.To
		}
		if !chosen[next] {
			chosen[next] = true
			order = append(order, next)
		}
		cur = next
	}

	local := make(map[int]int, len(order))
	var cat catalog.Catalog
	for li, gi := range order {
		local[gi] = li
		cat.Add(full.Rels[gi])
	}
	// Join selectivities derive from the unfiltered table cardinalities.
	g := graph.New(len(order))
	for _, fk := range schema.FKs {
		lf, okF := local[fk.From]
		lt, okT := local[fk.To]
		if !okF || !okT {
			continue
		}
		var sel float64
		if pkfk {
			sel = pkSel(cat.Rels[lt].Rows)
		} else {
			// Non PK-FK: many-to-many value overlap.
			distinct := math.Max(10, math.Min(cat.Rels[lf].Rows, cat.Rels[lt].Rows)/
				math.Pow(10, 1+2*rng.Float64()))
			sel = 1 / distinct
		}
		g.AddEdge(lf, lt, sel)
	}
	// Mild random selections, as query predicates would induce.
	for i := range cat.Rels {
		cat.Rels[i].Rows = math.Max(1, cat.Rels[i].Rows*math.Pow(10, -1.5*rng.Float64()))
	}
	return &cost.Query{Cat: cat, G: g}
}

// largestComponent returns the vertices of the largest connected component
// of the FK graph.
func largestComponent(n int, fks []catalog.FKEdge) []int {
	uf := graph.NewUnionFind(n)
	for _, fk := range fks {
		uf.Union(fk.From, fk.To)
	}
	groups := uf.Groups()
	var best []int
	for _, members := range groups {
		if len(members) > len(best) {
			best = members
		}
	}
	return best
}

// CycleSQL renders an n-relation cyclic join in the internal/sql dialect
// against the MusicBrainz schema: n aliases of artist joined in a ring,
// each edge on its own column pair so the binder's equivalence-class
// closure adds no extra edges and the bound join graph is an exact
// n-cycle. The serving layers' acceptance tests and demos use it to drive
// the optimizer's large-cyclic band end to end.
func CycleSQL(n int) string {
	var b strings.Builder
	b.WriteString("SELECT a0.id FROM ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "artist a%d", i)
	}
	b.WriteString(" WHERE ")
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" AND ")
		}
		fmt.Fprintf(&b, "a%d.c%d = a%d.c%d", i, i, (i+1)%n, i)
	}
	return b.String()
}
