package workload

import (
	"math/rand"
	"testing"

	"repro/internal/bitset"
	"repro/internal/cost"
)

func fullSet(q *cost.Query) bitset.Set {
	s := bitset.NewSet(q.N())
	for i := 0; i < q.N(); i++ {
		s.Add(i)
	}
	return s
}

func checkQuery(t *testing.T, kind Kind, q *cost.Query, n int) {
	t.Helper()
	if q.N() != n {
		t.Fatalf("%s: got %d relations, want %d", kind, q.N(), n)
	}
	if !q.G.ConnectedSet(fullSet(q)) {
		t.Fatalf("%s(%d): join graph disconnected", kind, n)
	}
	for i := 0; i < n; i++ {
		if q.Rows(i) < 1 {
			t.Errorf("%s: relation %d has %v rows", kind, i, q.Rows(i))
		}
	}
	for _, e := range q.G.Edges {
		if e.Sel <= 0 || e.Sel > 1 {
			t.Errorf("%s: edge (%d,%d) selectivity %v out of (0,1]", kind, e.A, e.B, e.Sel)
		}
	}
}

func TestGenerateAllFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []Kind{KindStar, KindSnowflake, KindChain, KindCycle, KindClique, KindMB} {
		for _, n := range []int{2, 5, 12, 25} {
			q, err := Generate(kind, n, rng)
			if err != nil {
				t.Fatalf("%s(%d): %v", kind, n, err)
			}
			checkQuery(t, kind, q, n)
		}
	}
}

func TestGenerateDeterministicForSeed(t *testing.T) {
	for _, kind := range []Kind{KindStar, KindMB} {
		a, err := Generate(kind, 15, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(kind, 15, rand.New(rand.NewSource(99)))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 15; i++ {
			if a.Rows(i) != b.Rows(i) {
				t.Fatalf("%s: nondeterministic rows for relation %d", kind, i)
			}
		}
		if len(a.G.Edges) != len(b.G.Edges) {
			t.Fatalf("%s: nondeterministic edge count", kind)
		}
	}
}

func TestStarShape(t *testing.T) {
	q := Star(10, rand.New(rand.NewSource(2)))
	// Every edge touches the fact table (vertex 0).
	for _, e := range q.G.Edges {
		if e.A != 0 && e.B != 0 {
			t.Errorf("star edge (%d,%d) misses the fact table", e.A, e.B)
		}
	}
	if len(q.G.Edges) != 9 {
		t.Errorf("star(10) has %d edges, want 9", len(q.G.Edges))
	}
}

func TestCliqueShape(t *testing.T) {
	q := Clique(7, rand.New(rand.NewSource(3)))
	if len(q.G.Edges) != 21 {
		t.Errorf("clique(7) has %d edges, want 21", len(q.G.Edges))
	}
}

func TestSnowflakeIsTree(t *testing.T) {
	q := Snowflake(25, rand.New(rand.NewSource(4)))
	if !q.G.IsTree() {
		t.Error("snowflake join graph must be a tree")
	}
}

func TestMusicBrainzWalkProducesPKFKSelectivities(t *testing.T) {
	q := MusicBrainzQuery(20, rand.New(rand.NewSource(5)))
	checkQuery(t, KindMB, q, 20)
	// PK-FK joins: every selectivity is 1/|PK| for some table, i.e. < 0.5.
	for _, e := range q.G.Edges {
		if e.Sel >= 0.5 {
			t.Errorf("PK-FK selectivity %v suspiciously high", e.Sel)
		}
	}
}

func TestMusicBrainzNonPKFKDiffersFromPKFK(t *testing.T) {
	pk := MusicBrainzQuery(15, rand.New(rand.NewSource(6)))
	non := MusicBrainzNonPKFK(15, rand.New(rand.NewSource(6)))
	if pk.N() != non.N() {
		t.Fatal("same walk expected for same seed")
	}
	same := true
	for i := range pk.G.Edges {
		if pk.G.Edges[i].Sel != non.G.Edges[i].Sel {
			same = false
		}
	}
	if same {
		t.Error("non PK-FK selectivities identical to PK-FK")
	}
}

func TestJOBQueries(t *testing.T) {
	qs := JOBQueries(1)
	if len(qs) != 33 {
		t.Fatalf("JOB has %d query families, want 33", len(qs))
	}
	maxRels := 0
	for _, jq := range qs {
		checkQuery(t, KindJOB, jq.Query, jq.Rels)
		if jq.Rels > maxRels {
			maxRels = jq.Rels
		}
		if jq.Rels < 4 {
			t.Errorf("%s: only %d relations", jq.Name, jq.Rels)
		}
	}
	if maxRels != 17 {
		t.Errorf("largest JOB query has %d relations, want 17 (§7.2.4)", maxRels)
	}
}

func TestGenerateUnknownKind(t *testing.T) {
	if _, err := Generate("nonsense", 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown kind must error")
	}
	if _, err := Generate(KindJOB, 5, rand.New(rand.NewSource(1))); err == nil {
		t.Error("JOB kind must direct callers to JOBQueries")
	}
}
