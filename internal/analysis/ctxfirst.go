package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFirst enforces the context discipline PR 5 threaded through the
// tree: library code never mints its own root context, and a function
// that takes a context takes it first.
//
//   - context.Background() / context.TODO() are banned outside cmd/*,
//     examples/* and tests. One carve-out: normalizing a nil caller
//     context (inside `if ctx == nil { ... }`) is the documented API
//     contract of the core entry points and stays legal.
//   - Any function with a context.Context parameter must take it as the
//     first parameter.
//   - An exported function that blocks on channel operations (send,
//     receive, select without default) must take a context — otherwise
//     its callers cannot cancel it.
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "library code must thread caller contexts, ctx parameters come first",
	Run:  runCtxFirst,
}

func runCtxFirst(p *Pass) error {
	exempt := pathHasSegment(p.Pkg.Path, "cmd") || pathHasSegment(p.Pkg.Path, "examples")
	for _, f := range p.Pkg.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) {
			switch n := n.(type) {
			case *ast.CallExpr:
				if exempt {
					return
				}
				name, ok := contextRootCall(p.Pkg.Info, n)
				if !ok || nilCtxGuarded(p.Pkg.Info, stack) {
					return
				}
				p.Reportf(n.Pos(), "context.%s() in library code: thread the caller's ctx instead", name)
			case *ast.FuncDecl:
				checkCtxPosition(p, n.Type)
				if !exempt && n.Name.IsExported() && n.Body != nil {
					checkExportedBlocks(p, n)
				}
			case *ast.FuncLit:
				checkCtxPosition(p, n.Type)
			}
		})
	}
	return nil
}

// contextRootCall matches context.Background() and context.TODO().
func contextRootCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Background" && sel.Sel.Name != "TODO") {
		return "", false
	}
	return sel.Sel.Name, isPkgIdent(info, sel.X, "context")
}

// isPkgIdent reports whether e is an identifier naming the import of the
// package with the given path.
func isPkgIdent(info *types.Info, e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// nilCtxGuarded reports whether the ancestor chain passes through an
// if-statement of the shape `if ctx == nil` (or `nil == ctx`) for a
// context-typed ctx: the nil-normalization idiom the core APIs document.
func nilCtxGuarded(info *types.Info, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if cmp, ok := ifs.Cond.(*ast.BinaryExpr); ok && cmp.Op.String() == "==" {
			for _, pair := range [2][2]ast.Expr{{cmp.X, cmp.Y}, {cmp.Y, cmp.X}} {
				v, null := pair[0], pair[1]
				if id, ok := null.(*ast.Ident); !ok || id.Name != "nil" {
					continue
				}
				if t := info.TypeOf(v); t != nil && isContextType(t) {
					return true
				}
			}
		}
	}
	return false
}

// checkCtxPosition reports a context.Context parameter that is not first.
func checkCtxPosition(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0
	for _, field := range ft.Params.List {
		t := p.Pkg.Info.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if t != nil && isContextType(t) && pos > 0 {
			p.Reportf(field.Pos(), "context.Context must be the first parameter")
			return
		}
		pos += n
	}
}

// checkExportedBlocks flags an exported function that performs blocking
// channel operations with no context parameter.
func checkExportedBlocks(p *Pass, fd *ast.FuncDecl) {
	if ft := fd.Type; ft.Params != nil {
		for _, field := range ft.Params.List {
			if t := p.Pkg.Info.TypeOf(field.Type); t != nil && isContextType(t) {
				return
			}
		}
	}
	if blocking := firstBlockingOp(fd.Body); blocking != nil {
		p.Reportf(blocking.Pos(), "exported %s blocks on channel operations but has no context.Context parameter", fd.Name.Name)
	}
}

// firstBlockingOp finds a channel operation in body that blocks the
// calling goroutine: a send, a naked receive, or a select without a
// default clause. Receives that are a select clause's comm statement are
// judged as part of the select (a select with default never blocks), and
// code delegated to other goroutines (go statements, function literals)
// does not block this function's caller.
func firstBlockingOp(body ast.Node) ast.Node {
	var blocking ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil || blocking != nil {
			return
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return
		case *ast.SendStmt:
			blocking = n
			return
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				blocking = n
				return
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				blocking = n
				return
			}
			// Non-blocking select: the comm receives/sends cannot block,
			// but the clause bodies still run on this goroutine.
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					for _, stmt := range cc.Body {
						walk(stmt)
					}
				}
			}
			return
		}
		ast.Inspect(n, func(child ast.Node) bool {
			if child == nil || child == n || blocking != nil {
				return child == n
			}
			walk(child)
			return false
		})
	}
	walk(body)
	return blocking
}
