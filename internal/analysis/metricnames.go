package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricNames kills the three-way hand-sync between the metric families
// registered in code, the required-families gate in cmd/metricscheck,
// and the inventory in OBSERVABILITY.md (PR 7/9 kept all three aligned
// by review memory alone):
//
//   - every family passed to obs.MetricsWriter Counter/Gauge/Histogram
//     must be a string literal matching the project naming convention
//     (mpdp_ prefix, lower_snake, Prometheus-valid);
//   - every registered family must appear in OBSERVABILITY.md, and every
//     mpdp_* family OBSERVABILITY.md names must exist in code;
//   - cmd/metricscheck derives its required list from the same extraction
//     (ExtractMetricFamilies), so code and gate cannot drift by
//     construction.
var MetricNames = &Analyzer{
	Name:      "metricnames",
	Doc:       "metric families are literal, well-named, and in sync with OBSERVABILITY.md",
	Run:       runMetricNames,
	RunModule: runMetricNamesModule,
}

// familyRE is the project naming convention: the shared mpdp_ prefix and
// lower-snake words. It is strictly narrower than Prometheus's own
// [a-zA-Z_:][a-zA-Z0-9_:]* rule.
var familyRE = regexp.MustCompile(`^mpdp_[a-z][a-z0-9_]*[a-z0-9]$`)

// metricWriterCall matches a call to a Counter/Gauge/Histogram method and
// returns its first argument. Purely syntactic so the parse-only
// extractor can share it; typed callers additionally check the receiver.
func metricWriterCall(call *ast.CallExpr) (method string, nameArg ast.Expr, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	if !selOK || len(call.Args) < 1 {
		return "", nil, false
	}
	switch sel.Sel.Name {
	case "Counter", "Gauge", "Histogram":
		return sel.Sel.Name, call.Args[0], true
	}
	return "", nil, false
}

// isMetricsWriter reports whether e's type is (a pointer to) a named type
// called MetricsWriter.
func isMetricsWriter(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "MetricsWriter"
}

func runMetricNames(p *Pass) error {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			method, nameArg, ok := metricWriterCall(call)
			if !ok || !isMetricsWriter(p.Pkg.Info, call.Fun.(*ast.SelectorExpr).X) {
				return true
			}
			lit, ok := nameArg.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				p.Reportf(nameArg.Pos(), "%s family name must be a string literal so the gate and docs can extract it", method)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil || !familyRE.MatchString(name) {
				p.Reportf(nameArg.Pos(), "metric family %s does not match the naming convention %s", lit.Value, familyRE)
			}
			return true
		})
	}
	return nil
}

// moduleFamilies collects every literal family registered anywhere in the
// loaded module, with the position of its first registration.
func moduleFamilies(pkgs []*Package) map[string]token.Pos {
	fams := make(map[string]token.Pos)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, nameArg, ok := metricWriterCall(call)
				if !ok || !isMetricsWriter(pkg.Info, call.Fun.(*ast.SelectorExpr).X) {
					return true
				}
				if lit, ok := nameArg.(*ast.BasicLit); ok && lit.Kind == token.STRING {
					if name, err := strconv.Unquote(lit.Value); err == nil {
						if _, seen := fams[name]; !seen {
							fams[name] = lit.Pos()
						}
					}
				}
				return true
			})
		}
	}
	return fams
}

// docFamilyRE matches family mentions in Markdown. Tokens ending in an
// underscore (`mpdp_cluster_…` prefix prose) are not family names.
var docFamilyRE = regexp.MustCompile(`mpdp_[a-z0-9_]*[a-z0-9]`)

// docFamilies extracts the family names a document mentions, keyed to
// their first line number.
func docFamilies(doc string) map[string]int {
	out := make(map[string]int)
	for i, line := range strings.Split(doc, "\n") {
		for _, m := range docFamilyRE.FindAllString(line, -1) {
			if _, ok := out[m]; !ok {
				out[m] = i + 1
			}
		}
	}
	return out
}

func runMetricNamesModule(p *ModulePass) error {
	code := moduleFamilies(p.Packages)
	if len(code) == 0 {
		return nil
	}
	docPath := filepath.Join(p.RepoRoot, "OBSERVABILITY.md")
	b, err := os.ReadFile(docPath)
	if err != nil {
		p.ReportDoc(docPath, 1, "cannot read metric inventory: %v", err)
		return nil
	}
	doc := docFamilies(string(b))
	names := make([]string, 0, len(code))
	for name := range code {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, ok := doc[name]; !ok {
			p.Reportf(code[name], "metric family %s is registered in code but missing from OBSERVABILITY.md", name)
		}
	}
	docNames := make([]string, 0, len(doc))
	for name := range doc {
		docNames = append(docNames, name)
	}
	sort.Strings(docNames)
	for _, name := range docNames {
		if _, ok := code[name]; !ok {
			p.ReportDoc(docPath, doc[name], "OBSERVABILITY.md documents metric family %s, which no code registers", name)
		}
	}
	return nil
}

// MetricFamily is one extracted metric-family registration.
type MetricFamily struct {
	Name string
	// Package is the import-path-relative directory the registration
	// lives in ("internal/service").
	Package string
}

// ExtractMetricFamilies is the parse-only extraction cmd/metricscheck
// derives its required-families list from: it scans the named directories
// (relative to root) for Counter/Gauge/Histogram registrations with
// literal mpdp_* names. No type checking — the naming convention makes
// the literals unambiguous, and the typed metricnames analyzer verifies
// that convention in CI, so the cheap scan and the enforced invariant
// cannot disagree.
func ExtractMetricFamilies(root string, dirs ...string) ([]MetricFamily, error) {
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	var out []MetricFamily
	for _, dir := range dirs {
		abs := filepath.Join(root, filepath.FromSlash(dir))
		entries, err := os.ReadDir(abs)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			n := e.Name()
			if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(abs, n), nil, 0)
			if err != nil {
				return nil, err
			}
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, nameArg, ok := metricWriterCall(call)
				if !ok {
					return true
				}
				lit, ok := nameArg.(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					return true
				}
				name, err := strconv.Unquote(lit.Value)
				if err != nil || !strings.HasPrefix(name, "mpdp_") || seen[name] {
					return true
				}
				seen[name] = true
				out = append(out, MetricFamily{Name: name, Package: dir})
				return true
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: no metric families found under %s in %s", root, strings.Join(dirs, ", "))
	}
	return out, nil
}
