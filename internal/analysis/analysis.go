// Package analysis is mpdpvet's zero-dependency analyzer driver: it loads
// every package of the module with go/parser and go/types (no
// golang.org/x/tools) and runs the project-specific analyzers that machine-
// enforce invariants this codebase used to keep only in prose — see
// STATIC_ANALYSIS.md for the catalogue.
//
// A finding can be suppressed at its line (or the line above) with
//
//	//mpdpvet:ignore <analyzer> <reason>
//
// The reason is mandatory; the driver counts suppressions so the nightly
// build can watch exemption growth.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Finding is one analyzer report, printable as file:line:col: [name] msg.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Pass hands one package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet
	// RepoRoot is the directory holding the repo-level documents some
	// analyzers cross-check (API.md, OBSERVABILITY.md).
	RepoRoot string

	result *Result
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.result.add(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ModulePass hands the whole loaded module to an analyzer, for checks
// that need the union of every package (doc cross-sync).
type ModulePass struct {
	Analyzer *Analyzer
	Packages []*Package
	Fset     *token.FileSet
	RepoRoot string

	result *Result
}

// Reportf records a finding at a source position.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.result.add(Finding{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportDoc records a finding against a non-Go file (a Markdown document).
func (p *ModulePass) ReportDoc(file string, line int, format string, args ...any) {
	p.result.add(Finding{
		Pos:      token.Position{Filename: file, Line: line, Column: 1},
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check. Run (per package) and RunModule (once, over
// everything) are both optional, but at least one must be set.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// RunModule runs after every per-package pass, over the whole module.
	RunModule func(*ModulePass) error
}

// Analyzers returns the full suite in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFirst,
		HotPath,
		OpenLoop,
		MetricNames,
		ErrEnvelope,
		GuardedBy,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Result is one driver run's outcome: findings that survived suppression,
// plus the exemption accounting the nightly build reports on.
type Result struct {
	Findings []Finding
	// Suppressed counts findings silenced by an ignore directive, per
	// analyzer name.
	Suppressed map[string]int
	// Directives is the number of well-formed //mpdpvet:ignore directives
	// in the analyzed tree (used and unused alike).
	Directives int

	directives map[string]map[int][]directive // file → line → directives
}

func (r *Result) add(f Finding) {
	if r.suppressed(f) {
		if r.Suppressed == nil {
			r.Suppressed = make(map[string]int)
		}
		r.Suppressed[f.Analyzer]++
		return
	}
	r.Findings = append(r.Findings, f)
}

// suppressed reports whether a directive at the finding's line or the
// line above names its analyzer.
func (r *Result) suppressed(f Finding) bool {
	lines := r.directives[f.Pos.Filename]
	for _, l := range []int{f.Pos.Line, f.Pos.Line - 1} {
		for _, d := range lines[l] {
			if d.analyzer == f.Analyzer {
				return true
			}
		}
	}
	return false
}

type directive struct {
	analyzer string
	reason   string
}

var directiveRE = regexp.MustCompile(`^//mpdpvet:ignore\s+(\S+)\s*(.*)$`)

// collectDirectives scans every comment of every file for ignore
// directives. A directive without a reason is itself a finding — silent
// exemptions are how hand-kept invariants rotted in the first place.
func collectDirectives(pkgs []*Package, fset *token.FileSet, res *Result) {
	res.directives = make(map[string]map[int][]directive)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := directiveRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := fset.Position(c.Pos())
					if strings.TrimSpace(m[2]) == "" {
						res.Findings = append(res.Findings, Finding{
							Pos:      pos,
							Analyzer: "mpdpvet",
							Message:  fmt.Sprintf("ignore directive for %q needs a reason: //mpdpvet:ignore %s <why>", m[1], m[1]),
						})
						continue
					}
					byLine := res.directives[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]directive)
						res.directives[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], directive{analyzer: m[1], reason: m[2]})
					res.Directives++
				}
			}
		}
	}
}

// Run executes the analyzers over the loaded packages and returns the
// surviving findings sorted by position.
func Run(pkgs []*Package, fset *token.FileSet, repoRoot string, analyzers []*Analyzer) (*Result, error) {
	res := &Result{}
	collectDirectives(pkgs, fset, res)
	for _, a := range analyzers {
		if a.Run != nil {
			for _, pkg := range pkgs {
				if err := a.Run(&Pass{Analyzer: a, Pkg: pkg, Fset: fset, RepoRoot: repoRoot, result: res}); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
				}
			}
		}
		if a.RunModule != nil {
			if err := a.RunModule(&ModulePass{Analyzer: a, Packages: pkgs, Fset: fset, RepoRoot: repoRoot, result: res}); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		}
	}
	sort.Slice(res.Findings, func(i, j int) bool {
		a, b := res.Findings[i], res.Findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return res, nil
}

// walkWithStack visits every node of f, handing the visitor its ancestor
// chain (outermost first). The stdlib ast.Inspect has no parent access;
// several analyzers need it (enclosing if, enclosing function literal).
func walkWithStack(f *ast.File, visit func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		visit(n, stack)
		stack = append(stack, n)
		return true
	})
}

// pathHasSegment reports whether an import path contains seg as a whole
// path element ("repro/cmd/mpdpvet" has "cmd").
func pathHasSegment(path, seg string) bool {
	for _, s := range strings.Split(path, "/") {
		if s == seg {
			return true
		}
	}
	return false
}
