package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden suites: each analyzer runs over testdata/<tree>, and every
// finding must match a `// want` comment on its line — backtick-quoted
// regular expressions, several per comment when a line reports more than
// once:
//
//	time.Sleep(d) // want `naked time\.Sleep`
//
// Findings against non-Go files (the Markdown fixtures of the doc-sync
// analyzers) have nowhere to carry a want comment; runGolden returns them
// for explicit assertions.

var wantPatternRE = regexp.MustCompile("`([^`]*)`")

// collectWants scans the tree's .go files for want comments, keyed by
// absolute file path and line.
func collectWants(t *testing.T, root string) map[string]map[int][]string {
	t.Helper()
	wants := make(map[string]map[int][]string)
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		b, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		abs, aerr := filepath.Abs(path)
		if aerr != nil {
			return aerr
		}
		for i, line := range strings.Split(string(b), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			var pats []string
			for _, m := range wantPatternRE.FindAllStringSubmatch(rest, -1) {
				pats = append(pats, m[1])
			}
			if len(pats) == 0 {
				t.Errorf("%s:%d: want comment with no backtick-quoted pattern", path, i+1)
				continue
			}
			if wants[abs] == nil {
				wants[abs] = make(map[int][]string)
			}
			wants[abs][i+1] = pats
		}
		return nil
	})
	if err != nil {
		t.Fatalf("collecting want comments: %v", err)
	}
	return wants
}

// runGolden runs one analyzer over testdata/<tree>, verifies its Go-file
// findings against the tree's want comments, and returns the full result
// plus the findings that hit non-Go files.
func runGolden(t *testing.T, tree, analyzer string) (*Result, []Finding) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", tree))
	if err != nil {
		t.Fatal(err)
	}
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("unknown analyzer %q", analyzer)
	}
	loader := NewLoader(root, "")
	pkgs, err := loader.LoadTree()
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	res, err := Run(pkgs, loader.Fset, root, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", analyzer, err)
	}

	wants := collectWants(t, root)
	matched := make(map[string]map[int][]bool) // mirrors wants
	for f, lines := range wants {
		matched[f] = make(map[int][]bool)
		for l, pats := range lines {
			matched[f][l] = make([]bool, len(pats))
		}
	}
	var docFindings []Finding
	for _, f := range res.Findings {
		if !strings.HasSuffix(f.Pos.Filename, ".go") {
			docFindings = append(docFindings, f)
			continue
		}
		if f.Analyzer != analyzer {
			continue // directive-hygiene findings are asserted explicitly
		}
		pats := wants[f.Pos.Filename][f.Pos.Line]
		ok := false
		for i, pat := range pats {
			if matched[f.Pos.Filename][f.Pos.Line][i] {
				continue
			}
			re, rerr := regexp.Compile(pat)
			if rerr != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", f.Pos.Filename, f.Pos.Line, pat, rerr)
			}
			if re.MatchString(f.Message) {
				matched[f.Pos.Filename][f.Pos.Line][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected finding %s", f)
		}
	}
	for file, lines := range wants {
		for line, pats := range lines {
			for i, pat := range pats {
				if !matched[file][line][i] {
					t.Errorf("%s:%d: want %q matched no finding", file, line, pat)
				}
			}
		}
	}
	return res, docFindings
}

func TestCtxFirstGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "ctxfirst", "ctxfirst")
	if len(doc) != 0 {
		t.Errorf("unexpected doc findings: %v", doc)
	}
}

func TestHotPathGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "hotpath", "hotpath")
	if len(doc) != 0 {
		t.Errorf("unexpected doc findings: %v", doc)
	}
}

func TestOpenLoopGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "openloop", "openloop")
	if len(doc) != 0 {
		t.Errorf("unexpected doc findings: %v", doc)
	}
}

func TestGuardedByGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "guardedby", "guardedby")
	if len(doc) != 0 {
		t.Errorf("unexpected doc findings: %v", doc)
	}
}

func TestMetricNamesGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "metricnames", "metricnames")
	if len(doc) != 1 {
		t.Fatalf("doc findings = %v, want exactly one", doc)
	}
	f := doc[0]
	if !strings.HasSuffix(f.Pos.Filename, "OBSERVABILITY.md") ||
		!strings.Contains(f.Message, "mpdp_doc_only_total") ||
		!strings.Contains(f.Message, "no code registers") {
		t.Errorf("doc finding = %s", f)
	}
}

func TestErrEnvelopeGolden(t *testing.T) {
	t.Parallel()
	_, doc := runGolden(t, "errenvelope", "errenvelope")
	if len(doc) != 1 {
		t.Fatalf("doc findings = %v, want exactly one", doc)
	}
	f := doc[0]
	if !strings.HasSuffix(f.Pos.Filename, "API.md") ||
		!strings.Contains(f.Message, `"teapot"`) ||
		!strings.Contains(f.Message, "does not define") {
		t.Errorf("doc finding = %s", f)
	}
}

func TestSuppressionGolden(t *testing.T) {
	t.Parallel()
	res, doc := runGolden(t, "suppress", "openloop")
	if len(doc) != 0 {
		t.Errorf("unexpected doc findings: %v", doc)
	}
	if got := res.Suppressed["openloop"]; got != 1 {
		t.Errorf("Suppressed[openloop] = %d, want 1 (Quiet's reasoned directive)", got)
	}
	// Quiet's directive and WrongAnalyzer's are well-formed; Missing's
	// reason-less one is not counted.
	if res.Directives != 2 {
		t.Errorf("Directives = %d, want 2", res.Directives)
	}
	hygiene := 0
	for _, f := range res.Findings {
		if f.Analyzer == "mpdpvet" {
			hygiene++
			if !strings.Contains(f.Message, "needs a reason") {
				t.Errorf("hygiene finding = %s", f)
			}
		}
	}
	if hygiene != 1 {
		t.Errorf("directive-hygiene findings = %d, want 1 (Missing's reason-less directive)", hygiene)
	}
}
