package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package of the analyzed tree.
type Package struct {
	// Path is the package's import path ("repro/internal/dp").
	Path string
	// Dir is the directory its files live in.
	Dir string
	// Name is the package name from the source ("dp", "main").
	Name string
	// Files are the parsed non-test source files, comments attached.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks packages with nothing but the standard
// library: module-local import paths map to directories under the tree
// root, everything else (the standard library) is type-checked from
// $GOROOT/src by go/importer's source importer. Test files are skipped —
// the analyzers police shipped code, and the ctxfirst policy exempts
// tests anyway.
type Loader struct {
	// Fset positions every loaded file, module and stdlib alike.
	Fset *token.FileSet

	root   string // directory the tree's import paths are anchored at
	module string // module path prefix; "" maps paths directly under root
	std    types.ImporterFrom
	pkgs   map[string]*Package
}

// NewLoader returns a loader for the tree rooted at root. A non-empty
// module path anchors imports the Go-module way ("repro/internal/dp" →
// root/internal/dp); an empty one maps paths directly ("dp" → root/dp),
// which is what the golden testdata trees use.
func NewLoader(root, module string) *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:   fset,
		root:   root,
		module: module,
		std:    importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:   make(map[string]*Package),
	}
}

// dirFor maps an import path to a directory inside the tree, or "" when
// the path is not tree-local.
func (l *Loader) dirFor(path string) string {
	switch {
	case l.module != "" && path == l.module:
		return l.root
	case l.module != "" && strings.HasPrefix(path, l.module+"/"):
		return filepath.Join(l.root, filepath.FromSlash(strings.TrimPrefix(path, l.module+"/")))
	case l.module == "":
		d := filepath.Join(l.root, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: tree-local paths load through
// the loader (so their ASTs and Info are retained), anything else goes to
// the stdlib source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d := l.dirFor(path); d != "" {
		p, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, 0)
}

// load parses and type-checks the package in dir, memoized by import path.
func (l *Loader) load(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	for _, fn := range names {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Name:  files[0].Name.Name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// LoadTree loads every package under the loader's root (the "./..."
// pattern): any directory holding at least one non-test .go file, with
// testdata trees and dot-directories skipped. Packages come back sorted
// by import path.
func (l *Loader) LoadTree() ([]*Package, error) {
	var pkgs []*Package
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			n := d.Name()
			if path != l.root && (strings.HasPrefix(n, ".") || n == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		ip, perr := l.importPath(dir)
		if perr != nil {
			return perr
		}
		if _, ok := l.pkgs[ip]; ok {
			return nil
		}
		if _, lerr := l.load(ip, dir); lerr != nil {
			return lerr
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range l.pkgs {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// importPath derives the import path of a directory under the root.
func (l *Loader) importPath(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	rel = filepath.ToSlash(rel)
	switch {
	case rel == ".":
		if l.module != "" {
			return l.module, nil
		}
		return "", fmt.Errorf("analysis: package at tree root needs a module path")
	case l.module != "":
		return l.module + "/" + rel, nil
	default:
		return rel, nil
	}
}

// ModuleRoot walks up from dir to the directory holding go.mod and
// returns it with the declared module path.
func ModuleRoot(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		b, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(b), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}
