package analysis

import (
	"go/ast"
)

// OpenLoop protects PR 6's timing honesty. The load generator measures
// from scheduled send times, so its scheduling paths may not consult the
// wall clock: time.Now() is banned in internal/loadgen (the single run
// anchor carries an explicit exemption). The chaos and cluster retry
// loops must sleep through their ctx-aware helpers, so a naked
// time.Sleep is banned there — a bare sleep ignores cancellation and
// stretches shutdown by its full duration.
var OpenLoop = &Analyzer{
	Name: "openloop",
	Doc:  "loadgen derives time from the schedule; chaos/cluster sleeps are ctx-aware",
	Run:  runOpenLoop,
}

func runOpenLoop(p *Pass) error {
	banNow := pathHasSegment(p.Pkg.Path, "loadgen")
	banSleep := pathHasSegment(p.Pkg.Path, "chaos") || pathHasSegment(p.Pkg.Path, "cluster")
	if !banNow && !banSleep {
		return nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isPkgIdent(p.Pkg.Info, sel.X, "time") {
				return true
			}
			switch {
			case banNow && sel.Sel.Name == "Now":
				p.Reportf(call.Pos(), "time.Now() in loadgen: derive instants from the run's anchored schedule")
			case banSleep && sel.Sel.Name == "Sleep":
				p.Reportf(call.Pos(), "naked time.Sleep: use the ctx-aware sleep helper so cancellation interrupts the wait")
			}
			return true
		})
	}
	return nil
}
