package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// ErrEnvelope pins the error-code registry of the /v1 wire surface to
// its documentation: every Code* constant in the httpapi package must be
// a code API.md's status table names, every documented code must exist,
// and every call site that pairs a code with an HTTP status must use a
// pairing the table allows. The envelope is declared stable in API.md —
// an undocumented code or a mismatched status is a wire-contract break,
// not a style issue.
var ErrEnvelope = &Analyzer{
	Name:      "errenvelope",
	Doc:       "httpapi error codes and their HTTP statuses match API.md's table",
	RunModule: runErrEnvelope,
}

// apiTableRowRE matches one status-table row: | 400 | `bad_request` ... .
var apiTableRowRE = regexp.MustCompile("^\\|\\s*(\\d{3})\\s*\\|\\s*`([a-z_]+)`")

// docPairs parses API.md's status table into code → allowed statuses.
func docPairs(doc string) (map[string]map[int]bool, map[string]int) {
	pairs := make(map[string]map[int]bool)
	lines := make(map[string]int)
	for i, line := range strings.Split(doc, "\n") {
		m := apiTableRowRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		status := 0
		for _, c := range m[1] {
			status = status*10 + int(c-'0')
		}
		code := m[2]
		if pairs[code] == nil {
			pairs[code] = make(map[int]bool)
			lines[code] = i + 1
		}
		pairs[code][status] = true
	}
	return pairs, lines
}

func runErrEnvelope(p *ModulePass) error {
	var apiPkgs []*Package
	for _, pkg := range p.Packages {
		if pkg.Name == "httpapi" {
			apiPkgs = append(apiPkgs, pkg)
		}
	}
	if len(apiPkgs) == 0 {
		return nil
	}
	docPath := filepath.Join(p.RepoRoot, "API.md")
	b, err := os.ReadFile(docPath)
	if err != nil {
		p.ReportDoc(docPath, 1, "cannot read error-code registry: %v", err)
		return nil
	}
	pairs, docLines := docPairs(string(b))

	// The registry: Code* string constants and where they are declared.
	consts := make(map[string]token.Pos) // code value → pos
	for _, pkg := range apiPkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !strings.HasPrefix(name, "Code") || c.Val().Kind() != constant.String {
				continue
			}
			code := constant.StringVal(c.Val())
			consts[code] = c.Pos()
			if _, ok := pairs[code]; !ok {
				p.Reportf(c.Pos(), "error code %q (%s) is not in API.md's status table", code, name)
			}
		}
	}
	docCodes := make([]string, 0, len(pairs))
	for code := range pairs {
		docCodes = append(docCodes, code)
	}
	sort.Strings(docCodes)
	for _, code := range docCodes {
		if _, ok := consts[code]; !ok {
			p.ReportDoc(docPath, docLines[code], "API.md documents error code %q, which httpapi does not define", code)
		}
	}

	for _, pkg := range apiPkgs {
		checkEnvelopeSites(p, pkg, pairs)
	}
	return nil
}

// checkEnvelopeSites verifies (status, code) pairings at the sites where
// both are visible in one statement: fail(w, rid, status, code, ...)
// calls, and return statements carrying an &Error{Code: ...} composite
// literal next to a constant status.
func checkEnvelopeSites(p *ModulePass, pkg *Package, pairs map[string]map[int]bool) {
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "fail" || len(n.Args) < 4 {
					return true
				}
				status, okS := constInt(info, n.Args[2])
				code, okC := constString(info, n.Args[3])
				if okS && okC {
					checkPair(p, n.Args[3].Pos(), pairs, code, status)
				}
			case *ast.ReturnStmt:
				var code string
				var codePos token.Pos
				var haveCode bool
				status, haveStatus := 0, false
				for _, res := range n.Results {
					if lit := errorCompositeLit(info, res); lit != nil {
						if c, ok := compositeCodeField(info, lit); ok {
							code, codePos, haveCode = c, lit.Pos(), true
						}
					} else if v, ok := constInt(info, res); ok && v >= 100 && v < 600 {
						status, haveStatus = v, true
					}
				}
				if haveCode && haveStatus {
					checkPair(p, codePos, pairs, code, status)
				}
			}
			return true
		})
	}
}

func checkPair(p *ModulePass, pos token.Pos, pairs map[string]map[int]bool, code string, status int) {
	allowed, ok := pairs[code]
	if !ok {
		p.Reportf(pos, "error code %q is not in API.md's status table", code)
		return
	}
	if !allowed[status] {
		p.Reportf(pos, "error code %q paired with HTTP %d; API.md allows %s", code, status, statusList(allowed))
	}
}

func statusList(set map[int]bool) string {
	var xs []int
	for s := range set {
		xs = append(xs, s)
	}
	sort.Ints(xs)
	parts := make([]string, len(xs))
	for i, s := range xs {
		parts[i] = itoa(s)
	}
	return strings.Join(parts, ", ")
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// errorCompositeLit unwraps &Error{...} / Error{...} composite literals.
func errorCompositeLit(info *types.Info, e ast.Expr) *ast.CompositeLit {
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = u.X
	}
	lit, ok := e.(*ast.CompositeLit)
	if !ok {
		return nil
	}
	named, ok := info.TypeOf(lit).(*types.Named)
	if !ok || named.Obj().Name() != "Error" {
		return nil
	}
	return lit
}

// compositeCodeField returns the constant value of the literal's Code
// field, when present and constant.
func compositeCodeField(info *types.Info, lit *ast.CompositeLit) (string, bool) {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if key, ok := kv.Key.(*ast.Ident); !ok || key.Name != "Code" {
			continue
		}
		return constString(info, kv.Value)
	}
	return "", false
}

func constInt(info *types.Info, e ast.Expr) (int, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return int(v), ok
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
