package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy machine-checks the `// guarded by mu` field annotations that
// previously bound only reviewers: a field annotated
//
//	waiters int // guarded by mu
//	waiters int // guarded by Service.mu
//
// may be read or written only inside functions that also acquire that
// mutex (a call to .Lock or .RLock on a field with the annotated name,
// qualified by the owning type when the annotation names one), or inside
// functions whose name ends in "Locked" — the repo's convention for
// helpers that document a held-lock precondition. The check is
// function-granular by design: it cannot see lock ordering, but it
// catches the common regression of a new accessor that forgets the mutex
// entirely.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "fields annotated `guarded by mu` are only touched with the mutex held",
	Run:  runGuardedBy,
}

var guardedByRE = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?)`)

// guardSpec names the protecting mutex: a field name, optionally
// qualified by the struct type that owns it.
type guardSpec struct {
	typeName string // "" when unqualified
	field    string
}

func parseGuard(s string) guardSpec {
	if i := strings.IndexByte(s, '.'); i >= 0 {
		return guardSpec{typeName: s[:i], field: s[i+1:]}
	}
	return guardSpec{field: s}
}

func runGuardedBy(p *Pass) error {
	info := p.Pkg.Info
	// Collect annotated fields: *types.Var of the field → its guard.
	guards := make(map[*types.Var]guardSpec)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				spec, ok := fieldGuard(field)
				if !ok {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						guards[v] = spec
					}
				}
			}
			return true
		})
	}
	if len(guards) == 0 {
		return nil
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkGuardedFunc(p, fd, guards)
		}
	}
	return nil
}

// fieldGuard reads a guard annotation from the field's trailing comment
// or doc comment.
func fieldGuard(field *ast.Field) (guardSpec, bool) {
	for _, cg := range []*ast.CommentGroup{field.Comment, field.Doc} {
		if cg == nil {
			continue
		}
		if m := guardedByRE.FindStringSubmatch(cg.Text()); m != nil {
			return parseGuard(m[1]), true
		}
	}
	return guardSpec{}, false
}

func checkGuardedFunc(p *Pass, fd *ast.FuncDecl, guards map[*types.Var]guardSpec) {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return
	}
	info := p.Pkg.Info
	// Which guards does this function hold at some point? Function-level:
	// any .Lock()/.RLock() on a matching mutex field counts.
	held := make(map[guardSpec]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		mutexSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		mv, ok := selectedField(info, mutexSel)
		if !ok {
			return true
		}
		held[guardSpec{field: mv.Name()}] = true
		if owner := fieldOwnerName(info, mutexSel); owner != "" {
			held[guardSpec{typeName: owner, field: mv.Name()}] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			// Composite-literal initialization happens before the value is
			// shared; keys are field references but not guarded accesses.
			if _, ok := n.Key.(*ast.Ident); ok {
				ast.Inspect(n.Value, func(m ast.Node) bool {
					if s, ok := m.(*ast.SelectorExpr); ok {
						checkGuardedSel(p, fd, s, guards, held)
					}
					return true
				})
				return false
			}
		case *ast.SelectorExpr:
			checkGuardedSel(p, fd, n, guards, held)
		}
		return true
	})
}

func checkGuardedSel(p *Pass, fd *ast.FuncDecl, sel *ast.SelectorExpr, guards map[*types.Var]guardSpec, held map[guardSpec]bool) {
	v, ok := selectedField(p.Pkg.Info, sel)
	if !ok {
		return
	}
	spec, ok := guards[v]
	if !ok || held[spec] {
		return
	}
	p.Reportf(sel.Sel.Pos(), "%s.%s (guarded by %s) accessed in %s without %s.Lock/RLock held in the same function",
		fieldOwnerName(p.Pkg.Info, sel), v.Name(), specString(spec), fd.Name.Name, specString(spec))
}

func specString(s guardSpec) string {
	if s.typeName != "" {
		return s.typeName + "." + s.field
	}
	return s.field
}

// selectedField resolves a selector to the struct field it names.
func selectedField(info *types.Info, sel *ast.SelectorExpr) (*types.Var, bool) {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil, false
	}
	v, ok := s.Obj().(*types.Var)
	return v, ok
}

// fieldOwnerName names the struct type a field selection goes through.
func fieldOwnerName(info *types.Info, sel *ast.SelectorExpr) string {
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
