package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotPath polices the allocation-free DP core PR 3 bought: a function
// whose doc comment carries the line
//
//	//mpdp:hotpath
//
// may not allocate through the constructs that historically crept back
// in: fmt.* calls, sort.Slice/SliceStable (their closure escapes),
// map/slice composite literals, variable-capturing closures, and
// interface boxing (a concrete value passed into an interface-typed
// parameter or conversion).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc:  "//mpdp:hotpath functions must not allocate",
	Run:  runHotPath,
}

// hotPathDirective marks a function as allocation-free.
const hotPathDirective = "//mpdp:hotpath"

func runHotPath(p *Pass) error {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isHotPath(fd) {
				continue
			}
			checkHotFunc(p, fd)
		}
	}
	return nil
}

func isHotPath(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, hotPathDirective) {
			return true
		}
	}
	return false
}

func checkHotFunc(p *Pass, fd *ast.FuncDecl) {
	info := p.Pkg.Info
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(p, info, name, n)
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "map literal allocates in hot path %s", name)
			case *types.Slice:
				p.Reportf(n.Pos(), "slice literal allocates in hot path %s", name)
			}
		case *ast.FuncLit:
			if capt := captured(info, n, fd); capt != "" {
				p.Reportf(n.Pos(), "closure captures %s and allocates in hot path %s", capt, name)
			}
		}
		return true
	})
}

func checkHotCall(p *Pass, info *types.Info, hot string, call *ast.CallExpr) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch {
		case isPkgIdent(info, sel.X, "fmt"):
			p.Reportf(call.Pos(), "fmt.%s allocates in hot path %s", sel.Sel.Name, hot)
			return
		case isPkgIdent(info, sel.X, "sort") && (sel.Sel.Name == "Slice" || sel.Sel.Name == "SliceStable"):
			p.Reportf(call.Pos(), "sort.%s allocates its closure in hot path %s", sel.Sel.Name, hot)
			return
		}
	}
	tv, ok := info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion T(x): boxing when T is an interface and x is not.
		if types.IsInterface(tv.Type) && len(call.Args) == 1 {
			if at := info.TypeOf(call.Args[0]); at != nil && !types.IsInterface(at) && !isUntypedNil(at) {
				p.Reportf(call.Pos(), "conversion to interface boxes its operand in hot path %s", hot)
			}
		}
		return
	}
	if tv.IsBuiltin() {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos && i == params.Len()-1 {
				pt = params.At(params.Len() - 1).Type() // s... passes the slice itself
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) || isUntypedNil(at) {
			continue
		}
		p.Reportf(arg.Pos(), "argument boxes a concrete value into an interface parameter in hot path %s", hot)
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// captured returns the name of a variable the literal captures from its
// enclosing function, or "". Captures force the closure (and often the
// variable) to escape; package-level objects and the literal's own
// declarations do not count.
func captured(info *types.Info, lit *ast.FuncLit, encl *ast.FuncDecl) string {
	var capt string
	ast.Inspect(lit, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		if obj.Parent() == nil || obj.Parent() == types.Universe {
			return true
		}
		// Declared inside the literal: not a capture.
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true
		}
		// Declared inside the enclosing function (params included): capture.
		if obj.Pos() >= encl.Pos() && obj.Pos() <= encl.End() {
			capt = obj.Name()
			return false
		}
		return true
	})
	return capt
}
