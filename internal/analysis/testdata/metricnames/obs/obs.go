// Package obs is the metricnames fixture: a MetricsWriter with literal,
// non-literal, misnamed, documented and undocumented family registrations.
package obs

// MetricsWriter mimics the real exposition writer's registration surface.
type MetricsWriter struct{}

// Counter registers a counter sample.
func (w *MetricsWriter) Counter(name, help string, labels []string, v float64) {}

// Gauge registers a gauge sample.
func (w *MetricsWriter) Gauge(name, help string, labels []string, v float64) {}

// Emit registers every fixture family.
func Emit(w *MetricsWriter, dynamic string) {
	w.Counter("mpdp_good_total", "documented and well-named", nil, 1)
	w.Counter(dynamic, "not extractable", nil, 1)                        // want `family name must be a string literal`
	w.Gauge("mpdp_Bad_Name", "breaks the convention", nil, 1)            // want `does not match the naming convention` `registered in code but missing from OBSERVABILITY\.md`
	w.Counter("mpdp_undocumented_total", "missing from the doc", nil, 1) // want `registered in code but missing from OBSERVABILITY\.md`
}
