// Package httpapi is the errenvelope fixture: an error-code registry with
// documented, undocumented and mispaired codes.
package httpapi

// The registry: CodeBadRequest and CodeOverloaded are documented;
// CodeGhost is not.
const (
	CodeBadRequest = "bad_request"
	CodeOverloaded = "overloaded"
	CodeGhost      = "ghost_code" // want `error code "ghost_code" \(CodeGhost\) is not in API\.md's status table`
)

// Error is the wire envelope.
type Error struct {
	Code    string
	Message string
}

type api struct{}

func (a *api) fail(w, rid string, status int, code, msg string) {}

// Handlers pair codes with statuses at fail call sites.
func (a *api) handlers() {
	a.fail("w", "rid", 400, CodeBadRequest, "ok")
	a.fail("w", "rid", 500, CodeBadRequest, "mispaired") // want `error code "bad_request" paired with HTTP 500; API\.md allows 400`
	a.fail("w", "rid", 503, CodeOverloaded, "ok")
}

// classify pairs a code with a status in one return statement.
func classify(bad bool) (*Error, int) {
	if bad {
		return &Error{Code: CodeOverloaded}, 404 // want `error code "overloaded" paired with HTTP 404; API\.md allows 503`
	}
	return &Error{Code: CodeBadRequest}, 400
}
