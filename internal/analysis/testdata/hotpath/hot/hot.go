// Package hot is the hotpath fixture: annotated functions that allocate
// through each banned construct, and annotated functions that stay clean.
package hot

import (
	"fmt"
	"sort"
)

func sink(v interface{}) { _ = v }

//mpdp:hotpath
func Formats(n int) string {
	return fmt.Sprintf("%d", n) // want `fmt\.Sprintf allocates in hot path Formats`
}

//mpdp:hotpath
func Sorts(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice allocates its closure in hot path Sorts` `closure captures xs`
}

//mpdp:hotpath
func MapLit() int {
	m := map[int]int{1: 2} // want `map literal allocates in hot path MapLit`
	return m[1]
}

//mpdp:hotpath
func SliceLit() int {
	xs := []int{1, 2, 3} // want `slice literal allocates in hot path SliceLit`
	return xs[0]
}

//mpdp:hotpath
func Captures(n int) func() int {
	return func() int { return n } // want `closure captures n and allocates in hot path Captures`
}

//mpdp:hotpath
func Boxes(n int) {
	sink(n) // want `argument boxes a concrete value into an interface parameter in hot path Boxes`
}

//mpdp:hotpath
func Converts(n int) interface{} {
	return interface{}(n) // want `conversion to interface boxes its operand in hot path Converts`
}

// --- clean cases ---

//mpdp:hotpath
func Clean(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

//mpdp:hotpath
func PassesInterface(v interface{}) {
	sink(v) // already an interface: no boxing
}

// Unannotated may allocate freely.
func Unannotated(n int) string {
	return fmt.Sprintf("%d", n)
}
