// Package cluster is the suppression fixture: one properly exempted
// finding, one reason-less directive that suppresses nothing.
package cluster

import "time"

// Quiet is exempted with a reasoned directive: no finding, one suppression.
func Quiet(d time.Duration) {
	//mpdpvet:ignore openloop fixture exercises the suppression plumbing
	time.Sleep(d)
}

// Missing carries a reason-less directive: the directive itself is the
// finding, and the sleep still reports.
func Missing(d time.Duration) {
	//mpdpvet:ignore openloop
	time.Sleep(d) // want `naked time\.Sleep`
}

// WrongAnalyzer names a different analyzer: the sleep still reports.
func WrongAnalyzer(d time.Duration) {
	//mpdpvet:ignore hotpath reasons do not transfer across analyzers
	time.Sleep(d) // want `naked time\.Sleep`
}
