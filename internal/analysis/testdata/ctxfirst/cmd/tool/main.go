// Command tool is the ctxfirst clean fixture: cmd/* may mint root
// contexts and block freely.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
	ch := make(chan int, 1)
	ch <- 1
	<-ch
}
