// Package lib is the ctxfirst true-positive fixture: library code that
// mints root contexts, misplaces ctx parameters and blocks without one.
package lib

import "context"

// Mint mints a root context in library code.
func Mint() context.Context {
	return context.Background() // want `context\.Background\(\) in library code`
}

// Todo does the same with TODO.
func Todo() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library code`
}

// Misplaced takes its context second.
func Misplaced(n int, ctx context.Context) int { // want `context\.Context must be the first parameter`
	_ = ctx
	return n
}

// Recv blocks on a receive with no way to cancel.
func Recv(ch chan int) int {
	return <-ch // want `exported Recv blocks on channel operations`
}

// Send blocks on a send with no way to cancel.
func Send(ch chan int, v int) {
	ch <- v // want `exported Send blocks on channel operations`
}

// Wait blocks in a select with no default.
func Wait(a, b chan int) int {
	select { // want `exported Wait blocks on channel operations`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// --- clean cases ---

// Normalize uses the documented nil-normalization carve-out.
func Normalize(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// First takes its context first: fine.
func First(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Poll uses a select with a default: non-blocking, no ctx needed.
func Poll(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// Cancellable blocks but takes a context: fine.
func Cancellable(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Spawn only blocks inside a goroutine it starts: the caller never waits.
func Spawn(ch chan int) {
	go func() {
		ch <- 1
	}()
}
