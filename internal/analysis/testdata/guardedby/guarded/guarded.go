// Package guarded is the guardedby fixture: annotated fields read with
// and without their mutex.
package guarded

import "sync"

// Counter guards n with an unqualified annotation.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Bad reads n without the lock.
func (c *Counter) Bad() int {
	return c.n // want `Counter\.n \(guarded by mu\) accessed in Bad without mu\.Lock/RLock held`
}

// Good locks before reading.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// readLocked documents a held-lock precondition via the naming convention.
func (c *Counter) readLocked() int { return c.n }

// Registry guards items with a type-qualified annotation.
type Registry struct {
	mu    sync.RWMutex
	items int // guarded by Registry.mu
}

// Size takes the read lock: clean.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.items
}

// Leak reads without any lock.
func (r *Registry) Leak() int {
	return r.items // want `Registry\.items \(guarded by Registry\.mu\) accessed in Leak`
}
