// Package loadgen is the openloop fixture for the time.Now ban.
package loadgen

import "time"

// Arrival consults the wall clock where the schedule should rule.
func Arrival() time.Time {
	return time.Now() // want `time\.Now\(\) in loadgen`
}

// Elapsed derives a duration without touching the clock: clean.
func Elapsed(start, now time.Time) time.Duration {
	return now.Sub(start)
}
