// Package other is outside the openloop scopes: both calls are clean here.
package other

import "time"

// Free may consult the clock and sleep.
func Free(d time.Duration) time.Time {
	time.Sleep(d)
	return time.Now()
}
