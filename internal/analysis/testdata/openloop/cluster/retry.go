// Package cluster is the openloop fixture for the naked-sleep ban.
package cluster

import (
	"context"
	"time"
)

// Backoff sleeps ignoring cancellation.
func Backoff(d time.Duration) {
	time.Sleep(d) // want `naked time\.Sleep`
}

// BackoffCtx waits through a timer and the context: clean.
func BackoffCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
