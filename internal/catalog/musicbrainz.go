package catalog

// MusicBrainz returns a 56-table catalog mirroring the MusicBrainz open music
// encyclopedia schema used in the paper (§7.2.2): artists, release groups,
// releases, recordings, works, labels and their many link/attribute tables.
// Row counts approximate the public database's published table sizes; the
// PK-FK edges returned alongside define the join graph for the random-walk
// query generator.
//
// FKEdge declares "From.column references To's primary key".
type FKEdge struct {
	From, To int
}

// MusicBrainzSchema bundles the catalog with its foreign-key topology.
type MusicBrainzSchema struct {
	Catalog Catalog
	FKs     []FKEdge
	byName  map[string]int
}

// Index returns the relation index for a table name, panicking on unknown
// names (schema is static; a typo is a programming error).
func (s *MusicBrainzSchema) Index(name string) int {
	i, ok := s.byName[name]
	if !ok {
		panic("catalog: unknown MusicBrainz table " + name)
	}
	return i
}

// MusicBrainz constructs the schema.
func MusicBrainz() *MusicBrainzSchema {
	type t struct {
		name  string
		rows  float64
		width int
	}
	tables := []t{
		{"area", 120e3, 40}, {"area_type", 10, 20}, {"artist", 2.1e6, 90},
		{"artist_alias", 250e3, 60}, {"artist_credit", 2.4e6, 40},
		{"artist_credit_name", 3.4e6, 40}, {"artist_type", 6, 20},
		{"gender", 5, 20}, {"label", 240e3, 70}, {"label_type", 10, 20},
		{"release", 3.6e6, 90}, {"release_group", 3.1e6, 60},
		{"release_group_primary_type", 5, 20}, {"release_status", 6, 20},
		{"release_packaging", 10, 20}, {"release_country", 3.2e6, 24},
		{"release_label", 2.1e6, 24}, {"medium", 3.9e6, 40},
		{"medium_format", 80, 20}, {"track", 42e6, 60},
		{"recording", 33e6, 70}, {"work", 1.9e6, 60}, {"work_type", 30, 20},
		{"url", 9.5e6, 80}, {"place", 60e3, 70}, {"place_type", 10, 20},
		{"event", 80e3, 70}, {"event_type", 10, 20}, {"series", 20e3, 50},
		{"series_type", 12, 20}, {"instrument", 1100, 40},
		{"instrument_type", 6, 20}, {"language", 7800, 24}, {"script", 200, 24},
		{"country_area", 260, 16}, {"isrc", 3.1e6, 30}, {"iswc", 1.2e6, 30},
		{"annotation", 700e3, 120}, {"tag", 200e3, 30},
		{"artist_tag", 800e3, 20}, {"recording_tag", 900e3, 20},
		{"release_tag", 600e3, 20}, {"release_group_tag", 500e3, 20},
		{"work_tag", 150e3, 20}, {"label_tag", 60e3, 20},
		{"l_artist_artist", 300e3, 30}, {"l_artist_recording", 2.8e6, 30},
		{"l_artist_release", 900e3, 30}, {"l_artist_work", 1.4e6, 30},
		{"l_recording_work", 2.3e6, 30}, {"l_release_url", 1.1e6, 30},
		{"link", 2.5e6, 30}, {"link_type", 800, 40},
		{"editor", 2.3e6, 60}, {"edit", 70e6, 80}, {"vote", 15e6, 24},
	}
	s := &MusicBrainzSchema{byName: make(map[string]int, len(tables))}
	for _, tb := range tables {
		r := NewRelation(tb.name, tb.rows, tb.width)
		r.HasPKIndex = true
		s.byName[tb.name] = s.Catalog.Add(r)
	}
	fk := func(from, to string) {
		s.FKs = append(s.FKs, FKEdge{From: s.Index(from), To: s.Index(to)})
	}
	// Core entity topology (PK-FK references as in the MusicBrainz schema).
	fk("area", "area_type")
	fk("artist", "area")
	fk("artist", "artist_type")
	fk("artist", "gender")
	fk("artist_alias", "artist")
	fk("artist_credit_name", "artist_credit")
	fk("artist_credit_name", "artist")
	fk("label", "area")
	fk("label", "label_type")
	fk("release", "artist_credit")
	fk("release", "release_group")
	fk("release", "release_status")
	fk("release", "release_packaging")
	fk("release", "language")
	fk("release", "script")
	fk("release_group", "artist_credit")
	fk("release_group", "release_group_primary_type")
	fk("release_country", "release")
	fk("release_country", "country_area")
	fk("release_label", "release")
	fk("release_label", "label")
	fk("medium", "release")
	fk("medium", "medium_format")
	fk("track", "medium")
	fk("track", "recording")
	fk("track", "artist_credit")
	fk("recording", "artist_credit")
	fk("work", "work_type")
	fk("place", "area")
	fk("place", "place_type")
	fk("event", "event_type")
	fk("series", "series_type")
	fk("instrument", "instrument_type")
	fk("country_area", "area")
	fk("isrc", "recording")
	fk("iswc", "work")
	fk("artist_tag", "artist")
	fk("artist_tag", "tag")
	fk("recording_tag", "recording")
	fk("recording_tag", "tag")
	fk("release_tag", "release")
	fk("release_tag", "tag")
	fk("release_group_tag", "release_group")
	fk("release_group_tag", "tag")
	fk("work_tag", "work")
	fk("work_tag", "tag")
	fk("label_tag", "label")
	fk("label_tag", "tag")
	fk("l_artist_artist", "artist")
	fk("l_artist_artist", "link")
	fk("l_artist_recording", "artist")
	fk("l_artist_recording", "recording")
	fk("l_artist_recording", "link")
	fk("l_artist_release", "artist")
	fk("l_artist_release", "release")
	fk("l_artist_release", "link")
	fk("l_artist_work", "artist")
	fk("l_artist_work", "work")
	fk("l_artist_work", "link")
	fk("l_recording_work", "recording")
	fk("l_recording_work", "work")
	fk("l_recording_work", "link")
	fk("l_release_url", "release")
	fk("l_release_url", "url")
	fk("l_release_url", "link")
	fk("link", "link_type")
	fk("edit", "editor")
	fk("vote", "editor")
	fk("vote", "edit")
	fk("annotation", "editor")
	return s
}

// StarCatalog returns a catalog for an n-relation star query: one large fact
// table plus n-1 dimensions with varied sizes so that join orders
// meaningfully differ in cost.
func StarCatalog(n int) Catalog {
	var c Catalog
	fact := NewRelation("fact", 10e6, 80)
	fact.HasPKIndex = true
	c.Add(fact)
	for i := 1; i < n; i++ {
		// Dimension sizes cycle over several orders of magnitude.
		rows := []float64{50, 1e3, 2e4, 3e5, 5e6}[i%5] * (1 + float64(i%7)/10)
		d := NewRelation(numbered("dim", i), rows, 40)
		d.HasPKIndex = true
		c.Add(d)
	}
	return c
}

// SnowflakeCatalog returns a catalog for an n-relation snowflake query whose
// arm depth matches graph.SnowflakeN(n, depth): sizes shrink with distance
// from the fact table, as in a normalized dimensional model.
func SnowflakeCatalog(n, depth int) Catalog {
	var c Catalog
	fact := NewRelation("fact", 10e6, 80)
	fact.HasPKIndex = true
	c.Add(fact)
	level := 0
	for i := 1; i < n; i++ {
		rows := []float64{8e5, 5e4, 3e3, 150}[level%4] * (1 + float64(i%5)/10)
		d := NewRelation(numbered("dim", i), rows, 40)
		d.HasPKIndex = true
		c.Add(d)
		level = (level + 1) % depth
	}
	return c
}

// UniformCatalog returns n relations with sizes cycling over a few orders of
// magnitude; used for chain, cycle and clique workloads.
func UniformCatalog(n int) Catalog {
	var c Catalog
	for i := 0; i < n; i++ {
		rows := []float64{1e3, 1e4, 1e5, 1e6}[i%4] * (1 + float64(i%3)/4)
		r := NewRelation(numbered("rel", i), rows, 50)
		r.HasPKIndex = true
		c.Add(r)
	}
	return c
}
