package catalog

import (
	"testing"

	"repro/internal/graph"
)

func TestNewRelationDerivesPages(t *testing.T) {
	r := NewRelation("t", 1e6, 100)
	if r.Pages <= 0 {
		t.Fatal("pages must be positive")
	}
	// ~66 tuples per 8KiB page at width 100+24.
	if r.Pages < 1e6/100 || r.Pages > 1e6/10 {
		t.Errorf("pages = %v, implausible for 1e6 rows", r.Pages)
	}
	tiny := NewRelation("t", 0, 10)
	if tiny.Rows != 1 {
		t.Errorf("rows clamped to %v, want 1", tiny.Rows)
	}
}

func TestMusicBrainzSchemaShape(t *testing.T) {
	s := MusicBrainz()
	if got := s.Catalog.Len(); got != 56 {
		t.Fatalf("MusicBrainz has %d tables, want 56 (as in the paper)", got)
	}
	for i, r := range s.Catalog.Rels {
		if r.Rows <= 0 || r.Pages <= 0 {
			t.Errorf("table %d (%s) has invalid stats", i, r.Name)
		}
		if !r.HasPKIndex {
			t.Errorf("table %s should have a PK index", r.Name)
		}
	}
	// Every FK edge references valid tables and no self-references.
	for _, fk := range s.FKs {
		if fk.From < 0 || fk.From >= 56 || fk.To < 0 || fk.To >= 56 || fk.From == fk.To {
			t.Errorf("bad FK edge %+v", fk)
		}
	}
	if s.Index("artist") < 0 || s.Index("release") < 0 {
		t.Error("Index lookup broken")
	}
}

func TestMusicBrainzLargestComponentIsLarge(t *testing.T) {
	s := MusicBrainz()
	uf := graph.NewUnionFind(s.Catalog.Len())
	for _, fk := range s.FKs {
		uf.Union(fk.From, fk.To)
	}
	largest := 0
	for _, members := range uf.Groups() {
		if len(members) > largest {
			largest = len(members)
		}
	}
	// Random walks need room: the giant component must span most tables.
	if largest < 40 {
		t.Errorf("largest FK component has %d tables; random-walk queries need ≥40", largest)
	}
}

func TestMusicBrainzIndexPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown table")
		}
	}()
	MusicBrainz().Index("definitely_not_a_table")
}

func TestSyntheticCatalogs(t *testing.T) {
	star := StarCatalog(20)
	if star.Len() != 20 {
		t.Fatalf("star catalog size %d", star.Len())
	}
	if star.Rels[0].Rows < star.Rels[1].Rows {
		t.Error("fact table should dominate dimension 1")
	}
	snow := SnowflakeCatalog(30, 4)
	if snow.Len() != 30 {
		t.Fatalf("snowflake catalog size %d", snow.Len())
	}
	uni := UniformCatalog(10)
	for i, r := range uni.Rels {
		if r.Rows <= 0 {
			t.Errorf("uniform catalog rel %d empty", i)
		}
	}
}
