// Package catalog models the statistics the optimizer consumes: per-relation
// row counts, page counts and tuple widths, plus primary-key/foreign-key
// metadata. It also ships the synthetic schema builders (star, snowflake,
// chain, cycle, clique) and a 56-table MusicBrainz catalog mirroring the
// real-world dataset used in the paper's evaluation (§7.2.2).
//
// No tuple data exists anywhere in this repository: join-order optimization
// only ever reads statistics, which is why a synthetic catalog preserves the
// paper's behaviour exactly (see DESIGN.md, substitutions).
package catalog

import "fmt"

// Relation describes one base relation's optimizer-visible statistics.
type Relation struct {
	Name  string
	Rows  float64 // estimated tuple count after applying local selections
	Pages float64 // heap pages
	Width int     // average tuple width in bytes

	// HasPKIndex marks relations with a usable primary-key index, enabling
	// the index-nested-loop path in the cost model.
	HasPKIndex bool
}

// PageSize is the assumed heap page size in bytes (PostgreSQL default 8KiB).
const PageSize = 8192

// NewRelation derives page count from rows and width.
func NewRelation(name string, rows float64, width int) Relation {
	if rows < 1 {
		rows = 1
	}
	tuplesPerPage := float64(PageSize) / float64(width+24) // 24B header overhead
	if tuplesPerPage < 1 {
		tuplesPerPage = 1
	}
	return Relation{
		Name:  name,
		Rows:  rows,
		Pages: rows/tuplesPerPage + 1,
		Width: width,
	}
}

// Catalog is an ordered collection of relations addressed by index.
type Catalog struct {
	Rels []Relation
}

// Add appends a relation and returns its index.
func (c *Catalog) Add(r Relation) int {
	c.Rels = append(c.Rels, r)
	return len(c.Rels) - 1
}

// Len returns the number of relations.
func (c *Catalog) Len() int { return len(c.Rels) }

// Rel returns the i-th relation.
func (c *Catalog) Rel(i int) Relation { return c.Rels[i] }

// numbered produces "prefix_i" names.
func numbered(prefix string, i int) string { return fmt.Sprintf("%s_%d", prefix, i) }
