package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPSize is the Selinger-style size-driven dynamic program [27] used by
// PostgreSQL: plans are built in increasing result size by pairing every
// memoized plan of size s1 with every memoized plan of size s2 = s - s1.
// Its weakness (§2, Fig. 2) is evaluating the full cross product of the two
// size classes, most of which overlap or are not connected.
func DPSize(in Input) (*plan.Node, Stats, error) {
	var stats Stats
	leaves, err := in.leaves()
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	dl := NewDeadline(in.Deadline)

	memo := plan.NewMemo(n)
	bySize := make([][]bitset.Mask, n+1)
	for i, leaf := range leaves {
		s := bitset.Single(i)
		memo.Put(s, leaf)
		bySize[1] = append(bySize[1], s)
		stats.ConnectedSets++
	}

	for size := 2; size <= n; size++ {
		for s1 := 1; s1 < size; s1++ {
			s2 := size - s1
			for _, a := range bySize[s1] {
				pa := memo.Get(a)
				for _, b := range bySize[s2] {
					if dl.Expired() {
						return nil, stats, ErrTimeout
					}
					stats.Evaluated++
					if !a.Disjoint(b) {
						continue
					}
					if !in.Q.G.ConnectedTo(a, b) {
						continue
					}
					stats.CCP++
					union := a.Union(b)
					pb := memo.Get(b)
					op, rows, c := in.M.JoinEval(in.Q, pa, pb)
					cur := memo.Get(union)
					if cur == nil {
						bySize[size] = append(bySize[size], union)
						stats.ConnectedSets++
					}
					if cur == nil || c < cur.Cost {
						memo.Put(union, in.M.MakeJoin(pa, pb, op, rows, c))
					}
				}
			}
		}
	}

	best, err := finish(in, memo)
	return best, stats, err
}
