package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPSize is the Selinger-style size-driven dynamic program [27] used by
// PostgreSQL: plans are built in increasing result size by pairing every
// memoized plan of size s1 with every memoized plan of size s2 = s - s1.
// Its weakness (§2, Fig. 2) is evaluating the full cross product of the two
// size classes, most of which overlap or are not connected.
func DPSize(in Input) (*plan.Node, Stats, error) {
	var stats Stats
	prep, err := Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	dl := in.NewDeadline()

	tab := prep.Seed(plan.TableSizeHint(n))
	bySize := make([][]bitset.Mask, n+1)
	for i := 0; i < n; i++ {
		bySize[1] = append(bySize[1], bitset.Single(i))
		stats.ConnectedSets++
	}

	for size := 2; size <= n; size++ {
		for s1 := 1; s1 < size; s1++ {
			s2 := size - s1
			for _, a := range bySize[s1] {
				pa := tab.MustView(a)
				for _, b := range bySize[s2] {
					if dl.Expired() {
						return nil, stats, dl.Err()
					}
					stats.Evaluated++
					if !a.Disjoint(b) {
						continue
					}
					if !in.Q.G.ConnectedTo(a, b) {
						continue
					}
					stats.CCP++
					union := a.Union(b)
					pb := tab.MustView(b)
					op, rows, c := in.M.JoinEvalEntry(in.Q, pa, pb)
					cur, known := tab.Cost(union)
					if !known {
						bySize[size] = append(bySize[size], union)
						stats.ConnectedSets++
					}
					if !known || c < cur {
						tab.Put(union, Winner{Left: a, Right: b, Op: op, Rows: rows, Cost: c, Found: true})
					}
				}
			}
		}
	}

	return Finish(in, tab, prep.Leaves, &stats)
}
