package dp

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// CounterReport captures, for one query, the EvaluatedCounter each
// enumeration strategy incurs together with the query's CCP-Counter lower
// bound. Counts for DPSub and DPSize are derived in closed form from the
// connected-set census (they depend only on how many connected sets exist
// per size), while the MPDP count follows from the per-set block structure;
// this lets Fig. 2 and Fig. 4 report counters for query sizes where actually
// executing DPSub or DPSize would take hours.
type CounterReport struct {
	// PerSizeConnected[i] is the number of connected subsets of size i.
	PerSizeConnected []uint64
	ConnectedSets    uint64
	// CCP is the CCP-Counter (symmetric count), identical for every optimal
	// algorithm (§2.1).
	CCP uint64
	// EvaluatedCounter of each enumeration strategy.
	DPSubEvaluated  uint64
	DPSizeEvaluated uint64
	MPDPEvaluated   uint64
	DPCCPEvaluated  uint64 // equals CCP: DPCCP enumerates only valid pairs
}

// Counters computes the census-based counter report without running any
// full optimization.
func Counters(in Input) (CounterReport, error) {
	var rep CounterReport
	g := in.Q.G
	n := g.N
	if n > 64 {
		return rep, ErrTooLarge
	}
	dl := in.NewDeadline()
	isTree := g.IsTree()

	cnt := make([]uint64, n+1)
	expired := false
	var bsc graph.BlockScratch
	enumerateCsg(g, func(s bitset.Mask) bool {
		if dl.Expired() {
			expired = true
			return false
		}
		c := s.Count()
		cnt[c]++
		if c < 2 {
			return true
		}
		if isTree {
			// Algorithm 2: one evaluation per edge of the induced tree,
			// costed in both orientations.
			rep.MPDPEvaluated += uint64(2 * (c - 1))
		} else {
			for _, b := range g.FindBlocksInto(s, &bsc) {
				rep.MPDPEvaluated += (uint64(1) << uint(b.Count())) - 2
			}
		}
		return true
	})
	if expired {
		return rep, dl.Err()
	}
	rep.PerSizeConnected = cnt
	for size := 1; size <= n; size++ {
		rep.ConnectedSets += cnt[size]
	}
	for size := 2; size <= n; size++ {
		rep.DPSubEvaluated += cnt[size] << uint(size)
		for s1 := 1; s1 < size; s1++ {
			rep.DPSizeEvaluated += cnt[s1] * cnt[size-s1]
		}
	}
	// CCP via the output-sensitive csg-cmp enumeration.
	if isTree {
		// Closed form: each connected tree set of size c has 2(c-1)
		// bipartitions (one per removed edge, both orientations).
		for size := 2; size <= n; size++ {
			rep.CCP += cnt[size] * uint64(2*(size-1))
		}
	} else {
		ok := ccpPairs(g, dl, func(_, _ bitset.Mask) { rep.CCP += 2 })
		if !ok {
			return rep, dl.Err()
		}
	}
	rep.DPCCPEvaluated = rep.CCP
	return rep, nil
}
