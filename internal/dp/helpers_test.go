package dp

import "time"

// timeNowMinusForever returns a deadline that is already long past.
func timeNowMinusForever() time.Time {
	return time.Now().Add(-time.Hour)
}

// noDeadline returns the zero time (no deadline).
func noDeadline() time.Time { return time.Time{} }
