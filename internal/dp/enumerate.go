package dp

import (
	"repro/internal/bitset"
	"repro/internal/graph"
)

// This file implements the Moerkotte–Neumann connected-subgraph enumeration
// [24] used twice: DPCCP consumes csg-cmp pairs directly, and the
// vertex-based algorithms (DPSub, MPDP) use the csg side alone to collect
// the connected sets S_i of each size without touching the C(n,i)
// disconnected ones (the GPU model accounts for the unrank+filter cost of
// those separately; see internal/gpusim).

// enumerateCsg calls emit for every connected subset of g exactly once,
// stopping the whole enumeration as soon as emit returns false — a deadline
// or memo-cap abort must not keep walking a 2^n lattice it can no longer
// use. Enumeration follows EnumerateCsg/EnumerateCsgRec of [24]: subsets
// are seeded from each vertex v (excluding all smaller-numbered vertices)
// and grown through the neighbourhood.
//
//mpdp:hotpath
func enumerateCsg(g *graph.Graph, emit func(s bitset.Mask) bool) {
	n := g.N
	for v := n - 1; v >= 0; v-- {
		s := bitset.Single(v)
		if !emit(s) {
			return
		}
		if !enumerateCsgRec(g, s, bitset.Full(v+1), emit) {
			return
		}
	}
}

// enumerateCsgRec grows s by every non-empty subset of its neighbourhood
// outside the exclusion set x, emitting each grown set and recursing. It
// returns false as soon as emit does, unwinding the whole recursion.
//
//mpdp:hotpath
func enumerateCsgRec(g *graph.Graph, s, x bitset.Mask, emit func(bitset.Mask) bool) bool {
	nb := g.NeighborhoodOf(s).Diff(x)
	if nb.Empty() {
		return true
	}
	for sub := nb.LowestBit(); !sub.Empty(); sub = sub.NextSubset(nb) {
		if !emit(s.Union(sub)) {
			return false
		}
	}
	for sub := nb.LowestBit(); !sub.Empty(); sub = sub.NextSubset(nb) {
		if !enumerateCsgRec(g, s.Union(sub), x.Union(nb), emit) {
			return false
		}
	}
	return true
}

// connectedSetsBySize buckets every connected subset of g by cardinality:
// result[i] holds the connected sets of size i (result[0] is empty). This
// is the "S_i" collection of Algorithms 1–3. The deadline is polled during
// enumeration; a nil return signals expiry.
func connectedSetsBySize(g *graph.Graph, dl *Deadline) [][]bitset.Mask {
	buckets := make([][]bitset.Mask, g.N+1)
	expired := false
	total := 0
	enumerateCsg(g, func(s bitset.Mask) bool {
		total++
		if dl.Expired() || total > maxConnectedSets {
			expired = true
			return false
		}
		c := s.Count()
		buckets[c] = append(buckets[c], s)
		return true
	})
	if expired {
		return nil
	}
	return buckets
}

// maxConnectedSets bounds how many connected sets the enumeration will
// materialize (512 MiB of masks). Queries beyond it cannot finish within
// any realistic time budget anyway, so the overflow is reported as a
// timeout instead of exhausting memory first.
const maxConnectedSets = 64 << 20

// enumerateCmp calls emit for every complement csg of s1: connected sets s2
// disjoint from s1, connected to s1, with the canonical ordering of [24]
// guaranteeing each unordered csg-cmp pair is produced exactly once across
// the full EnumerateCsg × EnumerateCmp sweep.
//
//mpdp:hotpath
func enumerateCmp(g *graph.Graph, s1 bitset.Mask, emit func(s2 bitset.Mask) bool) bool {
	x := bitset.Full(s1.Lowest() + 1).Union(s1)
	nb := g.NeighborhoodOf(s1).Diff(x)
	if nb.Empty() {
		return true
	}
	// Descending vertex order over the neighbourhood, iterated in place —
	// this runs once per csg of every query, so it must not allocate (the
	// old Elements() slice was the hot path's last per-pair allocation).
	for rest := nb; !rest.Empty(); {
		v := rest.Highest()
		rest = rest.Remove(v)
		s2 := bitset.Single(v)
		if !emit(s2) {
			return false
		}
		// B_v ∩ nb: smaller-or-equal neighbourhood vertices are excluded
		// from the recursion so each complement is generated once.
		bv := bitset.Full(v + 1).Intersect(nb)
		if !enumerateCsgRec(g, s2, x.Union(bv), emit) {
			return false
		}
	}
	return true
}

// ccpPairs invokes emit(s1, s2) for every csg-cmp pair of the query graph,
// each unordered pair exactly once. It returns false if the deadline
// expired, aborting the enumeration at the next (sparse) deadline poll
// rather than walking the remaining pairs.
func ccpPairs(g *graph.Graph, dl *Deadline, emit func(s1, s2 bitset.Mask)) bool {
	n := g.N
	expired := false
	for v := n - 1; v >= 0 && !expired; v-- {
		s1 := bitset.Single(v)
		sub := func(s bitset.Mask) bool {
			if dl.Expired() {
				expired = true
				return false
			}
			return enumerateCmp(g, s, func(s2 bitset.Mask) bool {
				if dl.Expired() {
					expired = true
					return false
				}
				emit(s, s2)
				return true
			})
		}
		if !sub(s1) {
			break
		}
		if !enumerateCsgRec(g, s1, bitset.Full(v+1), sub) {
			break
		}
	}
	return !expired
}
