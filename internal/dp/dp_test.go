package dp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bitset"
	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// randomQuery builds a random connected query with random statistics.
func randomQuery(n, extraEdges int, rng *rand.Rand) *cost.Query {
	g := graph.RandomConnected(n, extraEdges, rng)
	for i := range g.Edges {
		g.Edges[i].Sel = math.Pow(10, -1-3*rng.Float64())
	}
	// Rebuild the selectivity index to match mutated edges.
	g2 := graph.New(n)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, e.Sel)
	}
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		r := catalog.NewRelation("r", math.Pow(10, 1+4*rng.Float64()), 40+rng.Intn(100))
		r.HasPKIndex = rng.Intn(2) == 0
		cat.Add(r)
	}
	return &cost.Query{Cat: cat, G: g2}
}

func topoQuery(g *graph.Graph, rng *rand.Rand) *cost.Query {
	var cat catalog.Catalog
	for i := 0; i < g.N; i++ {
		r := catalog.NewRelation("r", math.Pow(10, 1+4*rng.Float64()), 50)
		r.HasPKIndex = true
		cat.Add(r)
	}
	g2 := graph.New(g.N)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, math.Pow(10, -1-3*rng.Float64()))
	}
	return &cost.Query{Cat: cat, G: g2}
}

// bruteForce is an independent reference optimizer: memoized recursion over
// all bipartitions of each connected set.
func bruteForce(q *cost.Query, m *cost.Model) *plan.Node {
	n := q.N()
	memo := map[bitset.Mask]*plan.Node{}
	var best func(s bitset.Mask) *plan.Node
	best = func(s bitset.Mask) *plan.Node {
		if p, ok := memo[s]; ok {
			return p
		}
		if s.Count() == 1 {
			p := m.Scan(q, s.Lowest())
			memo[s] = p
			return p
		}
		var b *plan.Node
		for lb := s.LowestBit(); !lb.Empty(); lb = lb.NextSubset(s) {
			rb := s.Diff(lb)
			if rb.Empty() || !q.G.Connected(lb) || !q.G.Connected(rb) || !q.G.ConnectedTo(lb, rb) {
				continue
			}
			l, r := best(lb), best(rb)
			if l == nil || r == nil {
				continue
			}
			if j := m.Join(q, l, r); b == nil || j.Cost < b.Cost {
				b = j
			}
		}
		memo[s] = b
		return b
	}
	return best(bitset.Full(n))
}

var allAlgorithms = []struct {
	name string
	f    Func
}{
	{"DPSize", DPSize},
	{"DPSub", DPSub},
	{"DPCCP", DPCCP},
	{"MPDP", MPDP},
	{"MPDPGeneral", MPDPGeneral},
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	return diff <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

func TestAllAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	m := cost.DefaultModel()
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(9)
		extra := rng.Intn(n)
		q := randomQuery(n, extra, rng)
		ref := bruteForce(q, m)
		if ref == nil {
			t.Fatalf("trial %d: brute force found no plan", trial)
		}
		for _, alg := range allAlgorithms {
			p, _, err := alg.f(Input{Q: q, M: m})
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, alg.name, err)
			}
			if !almostEqual(p.Cost, ref.Cost) {
				t.Errorf("trial %d (n=%d extra=%d): %s cost %.6f, brute force %.6f",
					trial, n, extra, alg.name, p.Cost, ref.Cost)
			}
			if err := p.Validate(allRels(n)); err != nil {
				t.Errorf("trial %d: %s produced invalid plan: %v", trial, alg.name, err)
			}
			if !almostEqual(p.Rows, ref.Rows) {
				t.Errorf("trial %d: %s rows %.3f, want %.3f", trial, alg.name, p.Rows, ref.Rows)
			}
		}
	}
}

func allRels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestCCPCountersAgreeAcrossAlgorithms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := cost.DefaultModel()
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(9)
		q := randomQuery(n, rng.Intn(n), rng)
		var want uint64
		for i, alg := range allAlgorithms {
			_, st, err := alg.f(Input{Q: q, M: m})
			if err != nil {
				t.Fatalf("%s: %v", alg.name, err)
			}
			if i == 0 {
				want = st.CCP
				continue
			}
			if st.CCP != want {
				t.Errorf("trial %d: %s CCP=%d, %s CCP=%d", trial, alg.name, st.CCP, allAlgorithms[0].name, want)
			}
		}
		cnt, err := CCPCount(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if cnt != want {
			t.Errorf("trial %d: CCPCount=%d, want %d", trial, cnt, want)
		}
	}
}

func TestMPDPTreeMeetsLowerBound(t *testing.T) {
	// Theorem 3: on tree join graphs EvaluatedCounter == CCPCounter.
	rng := rand.New(rand.NewSource(3))
	m := cost.DefaultModel()
	graphs := []*graph.Graph{
		graph.Star(8), graph.Chain(9), graph.SnowflakeN(10, 3),
		graph.RandomTree(11, rng),
	}
	for _, g := range graphs {
		q := topoQuery(g, rng)
		_, st, err := MPDP(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if st.Evaluated != st.CCP {
			t.Errorf("tree graph n=%d: Evaluated=%d != CCP=%d", g.N, st.Evaluated, st.CCP)
		}
	}
}

func TestMPDPCliqueMeetsLowerBound(t *testing.T) {
	// Lemma 9: fully-connected blocks make every evaluated pair a CCP pair.
	rng := rand.New(rand.NewSource(4))
	m := cost.DefaultModel()
	for _, n := range []int{3, 5, 7} {
		q := topoQuery(graph.Clique(n), rng)
		_, st, err := MPDPGeneral(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if st.Evaluated != st.CCP {
			t.Errorf("clique n=%d: Evaluated=%d != CCP=%d", n, st.Evaluated, st.CCP)
		}
	}
}

func TestMPDPEvaluatesFarFewerPairsThanDPSubOnStar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := cost.DefaultModel()
	q := topoQuery(graph.Star(14), rng)
	_, stSub, err := DPSub(Input{Q: q, M: m})
	if err != nil {
		t.Fatal(err)
	}
	_, stMPDP, err := MPDP(Input{Q: q, M: m})
	if err != nil {
		t.Fatal(err)
	}
	if stMPDP.Evaluated > stSub.Evaluated/10 {
		t.Errorf("expected order-of-magnitude gap: MPDP=%d DPSub=%d", stMPDP.Evaluated, stSub.Evaluated)
	}
	if stMPDP.CCP != stSub.CCP {
		t.Errorf("CCP mismatch: %d vs %d", stMPDP.CCP, stSub.CCP)
	}
}

func TestDisconnectedGraphRejected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 0.1)
	g.AddEdge(2, 3, 0.1)
	q := &cost.Query{Cat: catalog.UniformCatalog(4), G: g}
	for _, alg := range allAlgorithms {
		if _, _, err := alg.f(Input{Q: q, M: cost.DefaultModel()}); err != ErrDisconnected {
			t.Errorf("%s: got %v, want ErrDisconnected", alg.name, err)
		}
	}
}

func TestSingleRelationQuery(t *testing.T) {
	q := &cost.Query{Cat: catalog.UniformCatalog(1), G: graph.New(1)}
	for _, alg := range allAlgorithms {
		p, _, err := alg.f(Input{Q: q, M: cost.DefaultModel()})
		if err != nil {
			t.Fatalf("%s: %v", alg.name, err)
		}
		if !p.IsLeaf() || p.RelID != 0 {
			t.Errorf("%s: expected single scan, got %v", alg.name, p)
		}
	}
}

func TestCustomLeavesRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := randomQuery(5, 2, rng)
	m := cost.DefaultModel()
	leaves := make([]*plan.Node, 5)
	for i := range leaves {
		leaves[i] = &plan.Node{RelID: i, Rows: q.Rows(i), Cost: 12345 + float64(i)}
	}
	p, _, err := MPDP(Input{Q: q, M: m, Leaves: leaves})
	if err != nil {
		t.Fatal(err)
	}
	// Total cost must include each custom leaf cost exactly once.
	var leafSum float64
	var walk func(n *plan.Node)
	walk = func(n *plan.Node) {
		if n.IsLeaf() {
			leafSum += n.Cost
			return
		}
		walk(n.Left)
		walk(n.Right)
	}
	walk(p)
	want := 12345.0*5 + 0 + 1 + 2 + 3 + 4
	if math.Abs(leafSum-want) > 1e-6 {
		t.Errorf("leaf cost sum %.1f, want %.1f", leafSum, want)
	}
}

func TestTimeout(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	q := topoQuery(graph.Clique(16), rng)
	deadline := timeNowMinusForever()
	for _, alg := range allAlgorithms {
		_, _, err := alg.f(Input{Q: q, M: cost.DefaultModel(), Deadline: deadline})
		if err != ErrTimeout {
			t.Errorf("%s: got %v, want ErrTimeout", alg.name, err)
		}
	}
}

// testStarQuery builds an n-relation star: vertex 0 is the hub, so the
// connected-set lattice has ~2^(n-1) members.
func testStarQuery(t *testing.T, n int) *cost.Query {
	t.Helper()
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		cat.Add(catalog.NewRelation(fmt.Sprintf("r%d", i), 1000, 32))
	}
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, i, 0.001)
	}
	return &cost.Query{Cat: cat, G: g}
}

// TestConnectedBucketsHonorsDeadline: a hub-heavy graph's connected-set
// lattice is ~2^(n-1); once the deadline trips, the enumeration must
// abort instead of walking the remaining lattice (the GPU band routes
// graphs up to 41 relations here, where a non-aborting walk takes hours).
func TestConnectedBucketsHonorsDeadline(t *testing.T) {
	q := testStarQuery(t, 30)
	in := Input{Q: q, M: cost.DefaultModel(), Deadline: time.Now().Add(30 * time.Millisecond)}
	start := time.Now()
	_, err := ConnectedBuckets(in)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// Generous bound: the abort happens at the next sparse deadline poll,
	// not after the full 2^29 walk (which takes minutes).
	if elapsed > 5*time.Second {
		t.Errorf("enumeration ran %v past a 30ms deadline", elapsed)
	}
}
