package dp

import "repro/internal/plan"

// bestWin tracks the winning join candidate of a per-set evaluation without
// allocating: the DP inner loops evaluate millions of losing candidates and
// only the winner is materialized as a plan node.
type bestWin struct {
	l, r  *plan.Node
	op    plan.Op
	rows  float64
	cost  float64
	found bool
}

// offer records the candidate if it beats the current winner.
func (b *bestWin) offer(l, r *plan.Node, op plan.Op, rows, cost float64) {
	if !b.found || cost < b.cost {
		b.l, b.r, b.op, b.rows, b.cost, b.found = l, r, op, rows, cost, true
	}
}

// node materializes the winner, or returns nil if no candidate was offered.
func (b *bestWin) node(in Input) *plan.Node {
	if !b.found {
		return nil
	}
	return in.M.MakeJoin(b.l, b.r, b.op, b.rows, b.cost)
}
