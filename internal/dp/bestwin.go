package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// bestWin tracks the winning join candidate of a per-set evaluation by
// value: the DP inner loops evaluate millions of losing candidates, and the
// winner is recorded as a (left, right) split in the table — never as an
// allocated plan node. It embeds plan.Winner so evaluators return it
// directly.
type bestWin struct {
	plan.Winner
}

// offer records the candidate split if it beats the current winner.
//
//mpdp:hotpath
func (b *bestWin) offer(l, r bitset.Mask, op plan.Op, rows, cost float64) {
	if !b.Found || cost < b.Cost {
		b.Left, b.Right, b.Op, b.Rows, b.Cost, b.Found = l, r, op, rows, cost, true
	}
}

// hopeless reports whether the candidate orientation (l, r) provably cannot
// beat the current winner, before any selectivity or operator costing: every
// join operator's total cost is bounded below by l.Cost + r.Cost — except
// the index nested loop, which omits the right child's cost but exists only
// for leaf right sides, so the bound degrades to l.Cost alone there. All
// remaining cost terms are non-negative (cardinalities and cost constants
// are non-negative), and ties never replace the incumbent, so pruning at
// bound >= best leaves the winning plan bit-identical.
//
//mpdp:hotpath
func (b *bestWin) hopeless(l, r plan.Entry) bool {
	if !b.Found {
		return false
	}
	bound := l.Cost
	if !r.Leaf {
		bound += r.Cost
	}
	return bound >= b.Cost
}
