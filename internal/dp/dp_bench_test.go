package dp

import (
	"fmt"

	"math/rand"
	"repro/internal/bitset"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
)

// Per-algorithm micro-benchmarks on a fixed random cyclic graph; the
// repository-level bench_test.go sweeps the paper's workloads.
func BenchmarkExactAlgorithms(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := randomQuery(13, 6, rng)
	m := cost.DefaultModel()
	algs := []struct {
		name string
		f    Func
	}{
		{"DPSize", DPSize},
		{"DPSub", DPSub},
		{"DPCCP", DPCCP},
		{"MPDP", MPDPGeneral},
	}
	for _, alg := range algs {
		b.Run(alg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := alg.f(Input{Q: q, M: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkMPDPTreeVsGeneralOnTrees(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{12, 16} {
		q := topoQuery(graph.SnowflakeN(n, 4), rng)
		m := cost.DefaultModel()
		b.Run(fmt.Sprintf("Tree/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := MPDPTree(Input{Q: q, M: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("General/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := MPDPGeneral(Input{Q: q, M: m}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConnectedSetEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{16, 20} {
		q := topoQuery(graph.Star(n), rng)
		b.Run(fmt.Sprintf("star-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buckets := connectedSetsBySize(q.G, NewDeadline(noDeadline()))
				if buckets == nil {
					b.Fatal("enumeration aborted")
				}
			}
		})
	}
}

func BenchmarkCCPEnumeration(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := randomQuery(16, 6, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := uint64(0)
		ccpPairs(q.G, NewDeadline(noDeadline()), func(_, _ bitset.Mask) { count++ })
		if count == 0 {
			b.Fatal("no pairs")
		}
	}
}
