// Package dp implements the exact join-order optimizers evaluated in the
// paper: the vertex-based DPSize and DPSub baselines, the edge-based DPCCP
// baseline, and the paper's contribution MPDP (tree-specialised Algorithm 2
// and the general block-based hybrid enumeration of Algorithm 3).
//
// Every algorithm is instrumented with the paper's two efficiency counters
// (§2.1): EvaluatedCounter (join pairs examined) and CCPCounter (valid
// csg-cmp pairs, counting both orientations), and all of them return the
// same optimal bushy no-cross-product plan, which the test suite enforces.
//
// The DP hot path is allocation-free in steady state: the memo is the
// struct-of-arrays plan.Table (open addressing on Murmur3, the paper's §5
// memo layout), candidate joins are costed through value-typed entries, and
// plan trees are materialized only once per run, at Finish, from an arena.
package dp

import (
	"context"
	"errors"
	"time"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// Stats carries the instrumentation counters of one optimizer run.
type Stats struct {
	// Evaluated is the paper's EvaluatedCounter: the number of join pairs
	// the algorithm examined, valid or not.
	Evaluated uint64
	// CCP is the paper's CCP-Counter: the number of valid join pairs
	// (connected-subgraph complement pairs), including symmetric ones.
	CCP uint64
	// ConnectedSets is the number of connected subsets the algorithm
	// materialized (the size of the DP lattice actually visited). Subsets
	// seeded by a warm-start hook are not walked and count under WarmSeeded
	// instead, so this remains "lattice actually enumerated".
	ConnectedSets uint64
	// WarmSeeded is the number of connected subsets whose winner was seeded
	// into the DP table by the Input.Warm hook before enumeration began.
	WarmSeeded uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Evaluated += other.Evaluated
	s.CCP += other.CCP
	s.ConnectedSets += other.ConnectedSets
	s.WarmSeeded += other.WarmSeeded
}

// Errors returned by the optimizers.
var (
	// ErrTooLarge is returned for queries beyond the Mask width.
	ErrTooLarge = errors.New("dp: exact optimization supports at most 64 relations")
	// ErrDisconnected is returned when the join graph is disconnected and
	// no cross-product-free plan exists.
	ErrDisconnected = errors.New("dp: join graph is disconnected (cross products are not considered)")
	// ErrTimeout is returned when the optimizer exceeded its deadline.
	ErrTimeout = errors.New("dp: optimization timed out")
)

// Input is one optimization task over a (sub)query of at most 64 relations.
type Input struct {
	Q *cost.Query
	M *cost.Model

	// Ctx, when non-nil, carries caller cancellation: the enumerators abort
	// with the context's error as soon as their deadline checker observes
	// Done. A nil Ctx means "never cancelled" (context.Background semantics
	// without the interface call on the hot path).
	Ctx context.Context

	// Leaves optionally overrides the base plans for each relation; the
	// heuristic layer passes materialized composite plans here (IDP2 temp
	// tables, UnionDP partition plans). When nil, sequential scans are used.
	// Leaf nodes are used as-is; their Set field is rewritten to the local
	// singleton.
	Leaves []*plan.Node

	// Arena, when non-nil, supplies the nodes of the returned plan tree.
	// Long-lived callers reuse one arena across queries (Reset between
	// runs) so steady-state plan materialization never hits the allocator.
	// When nil, each run materializes from a private arena.
	Arena *plan.Arena

	// Deadline, when non-zero, bounds the optimization time; algorithms
	// return ErrTimeout once it passes.
	Deadline time.Time

	// Threads requests CPU parallelism for the algorithms that support it
	// (0 means all available cores, 1 means sequential).
	Threads int

	// Warm, when non-nil, is invoked by the level drivers after the base
	// relations are seeded and before enumeration: it may Put winners for
	// connected subsets into tab (remapped from a subplan memo), and returns
	// how many sets it seeded. Seeded sets are skipped by the enumeration
	// loops — the caller guarantees every seeded winner is the optimal plan
	// of its set under this query's statistics, and that its Left/Right
	// splits are connected sets (so the table stays materializable).
	// Only the level drivers (MPDP sequential and CPU-parallel) honour the
	// hook; the other enumerators ignore it and run cold.
	Warm func(tab *plan.Table, buckets [][]bitset.Mask) int

	// Harvest, when non-nil, receives the completed DP table after the plan
	// is materialized. The table is function-local to the run — ownership
	// transfers to the hook, which typically hands it to a background
	// subplan harvester. Only the level drivers invoke it.
	Harvest func(tab *plan.Table)
}

// Func is the common signature of every exact optimizer.
type Func func(in Input) (*plan.Node, Stats, error)

// Winner is the value-typed result of one per-set evaluation (the best
// split of the set plus its costing); see plan.Winner.
type Winner = plan.Winner

// Deadline is a cheap cooperative budget checker: Expired polls the clock
// and the caller's context only every few thousand iterations. It trips on
// whichever comes first — the wall-clock budget (ErrTimeout) or context
// cancellation (the context's error); Err reports which.
type Deadline struct {
	at   time.Time
	done <-chan struct{}
	ctx  context.Context
	err  error
	n    uint
}

// NewDeadline wraps at; the zero time means "no deadline".
func NewDeadline(at time.Time) *Deadline {
	return &Deadline{at: at}
}

// NewDeadline builds the checker for this input: the wall-clock budget plus
// the caller's cancellation context. Every driver (sequential, parallel,
// GPU-model) creates its per-worker checkers through this so that caller
// cancellation reaches every enumeration loop.
func (in *Input) NewDeadline() *Deadline {
	d := &Deadline{at: in.Deadline, ctx: in.Ctx}
	if in.Ctx != nil {
		d.done = in.Ctx.Done()
	}
	return d
}

const deadlinePollInterval = 8192

// Expired reports whether the budget is exhausted or the caller cancelled,
// polling sparsely. Once it returns true it keeps returning true and Err
// returns the cause.
func (d *Deadline) Expired() bool {
	if d.err != nil {
		return true
	}
	if d.at.IsZero() && d.done == nil {
		return false
	}
	d.n++
	if d.n%deadlinePollInterval != 0 {
		return false
	}
	if d.done != nil {
		select {
		case <-d.done:
			d.err = context.Cause(d.ctx)
			return true
		default:
		}
	}
	if !d.at.IsZero() && time.Now().After(d.at) {
		d.err = ErrTimeout
		return true
	}
	return false
}

// Err returns why the deadline tripped: ErrTimeout for the wall-clock
// budget, the context's cancellation error otherwise. Callers use it as the
// return value after Expired reported true; if the checker never tripped
// (e.g. a sibling worker's did), it re-derives the cause, defaulting to
// ErrTimeout.
func (d *Deadline) Err() error {
	if d.err != nil {
		return d.err
	}
	if d.done != nil {
		select {
		case <-d.done:
			d.err = context.Cause(d.ctx)
			return d.err
		default:
		}
	}
	return ErrTimeout
}

// Scratch holds the per-worker reusable buffers of the set evaluators so
// the DP inner loops stay allocation-free. The zero value is ready to use;
// each concurrent worker needs its own.
type Scratch struct {
	// Blocks is the DFS scratch of the per-set block decomposition.
	Blocks graph.BlockScratch
}

// SetEvaluator computes the best join of one connected set S given the DP
// table holding the best plans of all smaller connected sets. It returns
// the winning split by value; no plan node is materialized. The parallel
// and GPU-model drivers share these with the sequential algorithms so that
// plans and counters agree exactly across variants.
type SetEvaluator func(in Input, tab *plan.Table, s bitset.Mask, dl *Deadline, sc *Scratch) (Winner, Stats, error)

// Prepared holds the common setup of an optimization run.
type Prepared struct {
	Leaves []*plan.Node
}

// Prepare validates the input and materializes the per-relation base plans.
// The DP table itself is created by Seed once the driver knows (or has
// bounded) the number of connected sets the run will store.
func Prepare(in Input) (*Prepared, error) {
	leaves, err := in.leaves()
	if err != nil {
		return nil, err
	}
	return &Prepared{Leaves: leaves}, nil
}

// Seed creates the struct-of-arrays DP table pre-sized for hint connected
// sets (including the base relations) and seeds the base entries.
func (p *Prepared) Seed(hint int) *plan.Table {
	if hint < len(p.Leaves) {
		hint = len(p.Leaves)
	}
	tab := plan.NewTable(hint)
	for i, leaf := range p.Leaves {
		tab.PutBase(bitset.Single(i), leaf)
	}
	return tab
}

// ConnectedBuckets enumerates every connected subset of the query graph and
// buckets them by cardinality (result[i] holds the size-i sets). It returns
// ErrTimeout (or the context's error) if the budget expires mid-enumeration.
func ConnectedBuckets(in Input) ([][]bitset.Mask, error) {
	dl := in.NewDeadline()
	buckets := connectedSetsBySize(in.Q.G, dl)
	if buckets == nil {
		return nil, dl.Err()
	}
	return buckets, nil
}

// BucketCount sums the sizes of connected-set buckets, the exact pre-size
// for Seed.
func BucketCount(buckets [][]bitset.Mask) int {
	total := 0
	for _, b := range buckets {
		total += len(b)
	}
	return total
}

// CCPPairsSeq runs the sequential csg-cmp enumeration, invoking emit once
// per unordered valid join pair. It returns false when the deadline expired.
func CCPPairsSeq(g *graph.Graph, dl *Deadline, emit func(s1, s2 bitset.Mask)) bool {
	return ccpPairs(g, dl, emit)
}

// Finish materializes the full-query plan from the recorded splits — the
// single point where a run's winning tree becomes plan nodes.
func Finish(in Input, tab *plan.Table, leaves []*plan.Node, stats *Stats) (*plan.Node, Stats, error) {
	best, err := finish(in, tab, leaves)
	return best, *stats, err
}

// leaves materializes the per-relation base plans.
func (in *Input) leaves() ([]*plan.Node, error) {
	n := in.Q.N()
	if n > 64 {
		return nil, ErrTooLarge
	}
	if n == 0 {
		return nil, errors.New("dp: empty query")
	}
	out := make([]*plan.Node, n)
	for i := 0; i < n; i++ {
		if in.Leaves != nil && in.Leaves[i] != nil {
			l := *in.Leaves[i] // shallow copy so Set rewrite is local
			l.Set = bitset.Single(i)
			out[i] = &l
		} else {
			out[i] = in.M.Scan(in.Q, i)
		}
	}
	return out, nil
}

// arena returns the caller-provided arena or a private one for this run.
func (in *Input) arena() *plan.Arena {
	if in.Arena != nil {
		return in.Arena
	}
	return plan.NewArena()
}

// finish extracts the full-query plan from the table.
func finish(in Input, tab *plan.Table, leaves []*plan.Node) (*plan.Node, error) {
	full := bitset.Full(in.Q.N())
	best := tab.Build(full, leaves, in.arena())
	if best == nil {
		return nil, ErrDisconnected
	}
	return best, nil
}
