// Package dp implements the exact join-order optimizers evaluated in the
// paper: the vertex-based DPSize and DPSub baselines, the edge-based DPCCP
// baseline, and the paper's contribution MPDP (tree-specialised Algorithm 2
// and the general block-based hybrid enumeration of Algorithm 3).
//
// Every algorithm is instrumented with the paper's two efficiency counters
// (§2.1): EvaluatedCounter (join pairs examined) and CCPCounter (valid
// csg-cmp pairs, counting both orientations), and all of them return the
// same optimal bushy no-cross-product plan, which the test suite enforces.
package dp

import (
	"errors"
	"time"

	"repro/internal/bitset"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/plan"
)

// Stats carries the instrumentation counters of one optimizer run.
type Stats struct {
	// Evaluated is the paper's EvaluatedCounter: the number of join pairs
	// the algorithm examined, valid or not.
	Evaluated uint64
	// CCP is the paper's CCP-Counter: the number of valid join pairs
	// (connected-subgraph complement pairs), including symmetric ones.
	CCP uint64
	// ConnectedSets is the number of connected subsets the algorithm
	// materialized (the size of the DP lattice actually visited).
	ConnectedSets uint64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Evaluated += other.Evaluated
	s.CCP += other.CCP
	s.ConnectedSets += other.ConnectedSets
}

// Errors returned by the optimizers.
var (
	// ErrTooLarge is returned for queries beyond the Mask width.
	ErrTooLarge = errors.New("dp: exact optimization supports at most 64 relations")
	// ErrDisconnected is returned when the join graph is disconnected and
	// no cross-product-free plan exists.
	ErrDisconnected = errors.New("dp: join graph is disconnected (cross products are not considered)")
	// ErrTimeout is returned when the optimizer exceeded its deadline.
	ErrTimeout = errors.New("dp: optimization timed out")
)

// Input is one optimization task over a (sub)query of at most 64 relations.
type Input struct {
	Q *cost.Query
	M *cost.Model

	// Leaves optionally overrides the base plans for each relation; the
	// heuristic layer passes materialized composite plans here (IDP2 temp
	// tables, UnionDP partition plans). When nil, sequential scans are used.
	// Leaf nodes are used as-is; their Set field is rewritten to the local
	// singleton.
	Leaves []*plan.Node

	// Deadline, when non-zero, bounds the optimization time; algorithms
	// return ErrTimeout once it passes.
	Deadline time.Time

	// Threads requests CPU parallelism for the algorithms that support it
	// (0 means all available cores, 1 means sequential).
	Threads int
}

// Func is the common signature of every exact optimizer.
type Func func(in Input) (*plan.Node, Stats, error)

// Deadline is a cheap cooperative timeout checker: Expired polls the clock
// only every few thousand iterations.
type Deadline struct {
	at time.Time
	n  uint
}

// NewDeadline wraps at; the zero time means "no deadline".
func NewDeadline(at time.Time) *Deadline {
	return &Deadline{at: at}
}

const deadlinePollInterval = 8192

// Expired reports whether the deadline passed, polling the clock sparsely.
func (d *Deadline) Expired() bool {
	if d.at.IsZero() {
		return false
	}
	d.n++
	if d.n%deadlinePollInterval != 0 {
		return false
	}
	return time.Now().After(d.at)
}

// SetEvaluator computes the best plan for one connected set S given a memo
// holding the best plans for all smaller connected sets. The parallel and
// GPU-model drivers share these with the sequential algorithms so that
// plans and counters agree exactly across variants.
type SetEvaluator func(in Input, memo *plan.Memo, s bitset.Mask, dl *Deadline) (*plan.Node, Stats, error)

// Prepared holds the common setup of an optimization run.
type Prepared struct {
	Leaves []*plan.Node
	Memo   *plan.Memo
}

// Prepare validates the input, materializes the per-relation base plans and
// seeds the memo with them.
func Prepare(in Input) (*Prepared, error) {
	leaves, err := in.leaves()
	if err != nil {
		return nil, err
	}
	memo := plan.NewMemo(in.Q.N())
	for i, leaf := range leaves {
		memo.Put(bitset.Single(i), leaf)
	}
	return &Prepared{Leaves: leaves, Memo: memo}, nil
}

// ConnectedBuckets enumerates every connected subset of the query graph and
// buckets them by cardinality (result[i] holds the size-i sets). It returns
// ErrTimeout if the deadline expires mid-enumeration.
func ConnectedBuckets(in Input) ([][]bitset.Mask, error) {
	dl := NewDeadline(in.Deadline)
	buckets := connectedSetsBySize(in.Q.G, dl)
	if buckets == nil {
		return nil, ErrTimeout
	}
	return buckets, nil
}

// CCPPairsSeq runs the sequential csg-cmp enumeration, invoking emit once
// per unordered valid join pair. It returns false when the deadline expired.
func CCPPairsSeq(g *graph.Graph, dl *Deadline, emit func(s1, s2 bitset.Mask)) bool {
	return ccpPairs(g, dl, emit)
}

// Finish extracts the full-query plan from the memo.
func Finish(in Input, memo *plan.Memo, stats *Stats) (*plan.Node, Stats, error) {
	best, err := finish(in, memo)
	return best, *stats, err
}

// leaves materializes the per-relation base plans.
func (in *Input) leaves() ([]*plan.Node, error) {
	n := in.Q.N()
	if n > 64 {
		return nil, ErrTooLarge
	}
	if n == 0 {
		return nil, errors.New("dp: empty query")
	}
	out := make([]*plan.Node, n)
	for i := 0; i < n; i++ {
		if in.Leaves != nil && in.Leaves[i] != nil {
			l := *in.Leaves[i] // shallow copy so Set rewrite is local
			l.Set = bitset.Single(i)
			out[i] = &l
		} else {
			out[i] = in.M.Scan(in.Q, i)
		}
	}
	return out, nil
}

// finish extracts the full-query plan from the memo.
func finish(in Input, memo *plan.Memo) (*plan.Node, error) {
	full := bitset.Full(in.Q.N())
	best := memo.Get(full)
	if best == nil {
		return nil, ErrDisconnected
	}
	return best, nil
}
