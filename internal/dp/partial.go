package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// Partial is the outcome of a bounded MPDP run: the DP table over connected
// sets of at most maxSize relations plus everything needed to materialize
// any memoized sub-plan on demand. IDP1 scans costs by value and builds a
// tree only for the one set it materializes per round.
type Partial struct {
	in     Input
	tab    *plan.Table
	leaves []*plan.Node
}

// Cost returns the memoized cost of set s, or ok = false when s was not
// reached (disconnected or beyond the size bound).
func (p *Partial) Cost(s bitset.Mask) (float64, bool) { return p.tab.Cost(s) }

// Build materializes the memoized plan of set s, or nil.
func (p *Partial) Build(s bitset.Mask) *plan.Node {
	return p.tab.Build(s, p.leaves, p.in.arena())
}

// RunPartial runs the MPDP dynamic program only up to sets of maxSize
// relations and returns the partial memo together with the connected-set
// buckets. IDP1 uses it to find the best plan of exactly k relations at
// each materialization step without paying for the full lattice.
func RunPartial(in Input, maxSize int) (*Partial, [][]bitset.Mask, Stats, error) {
	var stats Stats
	prep, err := Prepare(in)
	if err != nil {
		return nil, nil, stats, err
	}
	n := in.Q.N()
	if maxSize > n {
		maxSize = n
	}
	dl := in.NewDeadline()
	buckets, err := boundedConnectedSets(in, maxSize, dl)
	if err != nil {
		return nil, nil, stats, err
	}
	tab := prep.Seed(BucketCount(buckets))
	stats.ConnectedSets = uint64(n)
	var sc Scratch
	for size := 2; size <= maxSize; size++ {
		for _, s := range buckets[size] {
			stats.ConnectedSets++
			win, st, err := EvaluateSetMPDP(in, tab, s, dl, &sc)
			stats.Add(st)
			if err != nil {
				return nil, nil, stats, err
			}
			if win.Found {
				tab.Put(s, win)
			}
		}
	}
	return &Partial{in: in, tab: tab, leaves: prep.Leaves}, buckets, stats, nil
}

// boundedConnectedSets enumerates connected sets of at most maxSize
// relations. The csg recursion is pruned as soon as a set exceeds the
// bound, keeping IDP1 polynomial for fixed k.
func boundedConnectedSets(in Input, maxSize int, dl *Deadline) ([][]bitset.Mask, error) {
	g := in.Q.G
	buckets := make([][]bitset.Mask, g.N+1)
	expired := false
	var rec func(s, x bitset.Mask)
	rec = func(s, x bitset.Mask) {
		if expired || s.Count() >= maxSize {
			return
		}
		nb := g.NeighborhoodOf(s).Diff(x)
		if nb.Empty() {
			return
		}
		for sub := nb.LowestBit(); !sub.Empty(); sub = sub.NextSubset(nb) {
			if dl.Expired() {
				expired = true
				return
			}
			grown := s.Union(sub)
			if c := grown.Count(); c <= maxSize {
				buckets[c] = append(buckets[c], grown)
			}
		}
		for sub := nb.LowestBit(); !sub.Empty(); sub = sub.NextSubset(nb) {
			if grown := s.Union(sub); grown.Count() < maxSize {
				rec(grown, x.Union(nb))
			}
			if expired {
				return
			}
		}
	}
	for v := g.N - 1; v >= 0; v-- {
		s := bitset.Single(v)
		buckets[1] = append(buckets[1], s)
		rec(s, bitset.Full(v+1))
		if expired {
			return nil, dl.Err()
		}
	}
	return buckets, nil
}
