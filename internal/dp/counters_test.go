package dp

import (
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/graph"
)

// TestCountersMatchInstrumentedRuns cross-checks the census-based counter
// report against the counters measured by actually running each algorithm.
func TestCountersMatchInstrumentedRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := cost.DefaultModel()
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(9)
		q := randomQuery(n, rng.Intn(n), rng)
		rep, err := Counters(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		_, subStats, err := DPSub(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DPSubEvaluated != subStats.Evaluated {
			t.Errorf("trial %d: census DPSub=%d, run=%d", trial, rep.DPSubEvaluated, subStats.Evaluated)
		}
		if rep.CCP != subStats.CCP {
			t.Errorf("trial %d: census CCP=%d, run=%d", trial, rep.CCP, subStats.CCP)
		}
		_, mpdpStats, err := MPDP(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if rep.MPDPEvaluated != mpdpStats.Evaluated {
			t.Errorf("trial %d: census MPDP=%d, run=%d", trial, rep.MPDPEvaluated, mpdpStats.Evaluated)
		}
		_, sizeStats, err := DPSize(Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		if rep.DPSizeEvaluated != sizeStats.Evaluated {
			t.Errorf("trial %d: census DPSize=%d, run=%d", trial, rep.DPSizeEvaluated, sizeStats.Evaluated)
		}
	}
}

// TestCountersStarClosedForm pins the star-graph counters to their closed
// forms: cnt[i] = C(n-1, i-1), CCP = 2(n-1)·2^(n-2),
// DPSubEvaluated = Σ C(n-1, i-1)·2^i = 2·3^(n-1) - 2n - ... (computed
// directly), which is what makes Fig. 4's ratio grow as (3/2)^n.
func TestCountersStarClosedForm(t *testing.T) {
	for _, n := range []int{5, 10, 15} {
		q := topoQuery(graph.Star(n), rand.New(rand.NewSource(1)))
		rep, err := Counters(Input{Q: q, M: cost.DefaultModel()})
		if err != nil {
			t.Fatal(err)
		}
		// Closed-form CCP for a star: connected sets of size i contain the
		// hub and any i-1 dimensions; the only valid bipartitions cut off a
		// single dimension (2(i-1) ordered pairs per set).
		var ccp, sub uint64
		binom := func(a, b int) uint64 {
			r := uint64(1)
			for i := 0; i < b; i++ {
				r = r * uint64(a-i) / uint64(i+1)
			}
			return r
		}
		for i := 2; i <= n; i++ {
			cnt := binom(n-1, i-1)
			ccp += cnt * uint64(2*(i-1))
			sub += cnt << uint(i)
		}
		if rep.CCP != ccp {
			t.Errorf("n=%d: CCP=%d, closed form %d", n, rep.CCP, ccp)
		}
		if rep.DPSubEvaluated != sub {
			t.Errorf("n=%d: DPSub=%d, closed form %d", n, rep.DPSubEvaluated, sub)
		}
		if rep.MPDPEvaluated != ccp {
			t.Errorf("n=%d: MPDP=%d must meet the CCP bound on trees", n, rep.MPDPEvaluated)
		}
	}
}

func TestCountersRejectsOversizedQuery(t *testing.T) {
	q := &cost.Query{G: graph.New(65)}
	if _, err := Counters(Input{Q: q, M: cost.DefaultModel()}); err != ErrTooLarge {
		t.Errorf("got %v, want ErrTooLarge", err)
	}
}

func TestRunPartialFindsOptimalKSubplans(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	m := cost.DefaultModel()
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(5)
		k := 3 + rng.Intn(3)
		q := randomQuery(n, rng.Intn(n), rng)
		memo, buckets, _, err := RunPartial(Input{Q: q, M: m}, k)
		if err != nil {
			t.Fatal(err)
		}
		// Every memoized plan of size <= k must equal the optimum for its
		// set, per the full MPDP memo.
		fullPlan, _, err := MPDPGeneral(Input{Q: q, M: m})
		_ = fullPlan
		if err != nil {
			t.Fatal(err)
		}
		fullMemo, fullBuckets, _, err := RunPartial(Input{Q: q, M: m}, n)
		if err != nil {
			t.Fatal(err)
		}
		_ = fullBuckets
		for size := 2; size <= k; size++ {
			for _, s := range buckets[size] {
				got, gotOK := memo.Cost(s)
				want, wantOK := fullMemo.Cost(s)
				if gotOK != wantOK {
					t.Fatalf("size %d set %v: presence mismatch", size, s)
				}
				if gotOK && got != want {
					t.Errorf("size %d set %v: cost %v, want %v", size, s, got, want)
				}
				// Materialization must agree with the memoized cost.
				if p := memo.Build(s); gotOK && (p == nil || p.Cost != got) {
					t.Errorf("size %d set %v: Build cost mismatch", size, s)
				}
			}
		}
		// No bucket may exceed k.
		for size := k + 1; size <= n; size++ {
			if len(buckets[size]) > 0 {
				t.Errorf("RunPartial(k=%d) materialized sets of size %d", k, size)
			}
		}
	}
}

func TestBoundedConnectedSetsMatchesFullEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(8)
		q := randomQuery(n, rng.Intn(n), rng)
		in := Input{Q: q, M: cost.DefaultModel()}
		full, err := ConnectedBuckets(in)
		if err != nil {
			t.Fatal(err)
		}
		for k := 2; k <= n; k++ {
			bounded, err := boundedConnectedSets(in, k, NewDeadline(in.Deadline))
			if err != nil {
				t.Fatal(err)
			}
			for size := 1; size <= k; size++ {
				if len(bounded[size]) != len(full[size]) {
					t.Fatalf("n=%d k=%d size=%d: bounded %d sets, full %d",
						n, k, size, len(bounded[size]), len(full[size]))
				}
			}
		}
	}
}
