package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// MPDPTree is Algorithm 2: the tree-join-graph specialisation of MPDP. For a
// connected set S inducing a tree, the CCP pairs of S are exactly the
// bipartitions produced by removing each of its |S|-1 edges, so they are
// enumerated directly with no CCP checking at all and EvaluatedCounter
// meets the CCPCounter lower bound (Theorem 3).
func MPDPTree(in Input) (*plan.Node, Stats, error) {
	return runLevels(in, EvaluateSetMPDPTree)
}

// MPDP is the paper's general algorithm (Algorithm 3): a hybrid of vertex-
// and edge-based enumeration. For each connected set S it finds the
// biconnected components (blocks) of the induced subgraph; the expensive
// exhaustive subset enumeration is confined to each block (vertex-based),
// and each block-level CCP pair (lb, rb) is expanded to the unique CCP pair
// of S via the grow function (edge-based along the cut edges). Per-set work
// drops from O(2^|S|) to O(B · 2^maxBlock) while the level-synchronous
// structure keeps DPSub's parallelizability.
//
// When the whole join graph is a tree, MPDP dispatches to MPDPTree.
func MPDP(in Input) (*plan.Node, Stats, error) {
	if in.Q.G.IsTree() {
		return MPDPTree(in)
	}
	return MPDPGeneral(in)
}

// MPDPGeneral runs Algorithm 3 regardless of graph shape. Exported so tests
// and benches can exercise the block machinery on trees too.
func MPDPGeneral(in Input) (*plan.Node, Stats, error) {
	return runLevels(in, EvaluateSetMPDP)
}

// runLevels is the sequential level-by-level driver shared by the DPSub and
// MPDP family: enumerate connected sets bucketed by size, then evaluate each
// set of each level with the supplied evaluator. The table is pre-sized from
// the census so it never rehashes, and the single evaluator scratch is
// reused across every set of the run.
func runLevels(in Input, evaluate SetEvaluator) (*plan.Node, Stats, error) {
	var stats Stats
	prep, err := Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	dl := in.NewDeadline()
	buckets := connectedSetsBySize(in.Q.G, dl)
	if buckets == nil {
		return nil, stats, dl.Err()
	}
	tab := prep.Seed(BucketCount(buckets))
	stats.ConnectedSets = uint64(n)
	if in.Warm != nil {
		stats.WarmSeeded = uint64(in.Warm(tab, buckets))
	}

	var sc Scratch
	for size := 2; size <= n; size++ {
		for _, s := range buckets[size] {
			if stats.WarmSeeded > 0 && tab.Has(s) {
				continue // seeded by the warm-start hook: already optimal
			}
			stats.ConnectedSets++
			win, st, err := evaluate(in, tab, s, dl, &sc)
			stats.Add(st)
			if err != nil {
				return nil, stats, err
			}
			if win.Found {
				tab.Put(s, win)
			}
		}
	}
	best, st, err := Finish(in, tab, prep.Leaves, &stats)
	if err == nil && in.Harvest != nil {
		in.Harvest(tab)
	}
	return best, st, err
}

// EvaluateSetMPDP performs the per-set body of Algorithm 3 (lines 4-23):
// block discovery, block-level CCP enumeration, grow-based expansion and
// join costing. It is shared by the sequential, CPU-parallel and GPU-model
// variants so their plans and counters agree exactly.
//
//mpdp:hotpath
func EvaluateSetMPDP(in Input, tab *plan.Table, s bitset.Mask, dl *Deadline, sc *Scratch) (Winner, Stats, error) {
	var stats Stats
	g := in.Q.G
	var bw bestWin
	for _, block := range g.FindBlocksInto(s, &sc.Blocks) {
		// Proper, non-empty subsets lb ⊂ block (line 6).
		for lb := block.LowestBit(); !lb.Empty(); lb = lb.NextSubset(block) {
			rb := block.Diff(lb)
			if rb.Empty() {
				continue // lb == block is not a proper subset
			}
			if dl != nil && dl.Expired() {
				return bw.Winner, stats, dl.Err()
			}
			stats.Evaluated++
			// CCP block at block level (lines 10-14); disjointness holds
			// by construction. Connectivity of the block sides is a table
			// probe that also fetches the costing view: connected sets of
			// smaller sizes are all stored.
			l, ok := tab.View(lb)
			if !ok {
				continue
			}
			r, ok := tab.View(rb)
			if !ok {
				continue
			}
			if !g.ConnectedTo(lb, rb) {
				continue
			}
			stats.CCP++
			// Expand the block pair to the set-level pair (lines 17-18);
			// when the set is a single block the block pair already is the
			// set-level pair and the fetched views are reused as-is.
			left := g.Grow(lb, s.Diff(rb))
			right := s.Diff(left)
			if left != lb {
				l = tab.MustView(left)
			}
			if right != rb {
				r = tab.MustView(right)
			}
			if bw.hopeless(l, r) {
				continue
			}
			op, rows, c := in.M.JoinEvalEntry(in.Q, l, r)
			bw.offer(left, right, op, rows, c)
		}
	}
	return bw.Winner, stats, nil
}

// EvaluateSetMPDPTree performs the per-set body of Algorithm 2: one join
// pair per edge of the tree induced by S, costed in both orientations.
//
//mpdp:hotpath
func EvaluateSetMPDPTree(in Input, tab *plan.Table, s bitset.Mask, dl *Deadline, _ *Scratch) (Winner, Stats, error) {
	var stats Stats
	g := in.Q.G
	var bw bestWin
	for _, e := range g.Edges {
		if !s.Has(e.A) || !s.Has(e.B) {
			continue
		}
		if dl != nil && dl.Expired() {
			return bw.Winner, stats, dl.Err()
		}
		left := g.Grow(bitset.Single(e.A), s.Remove(e.B))
		right := s.Diff(left)
		stats.Evaluated += 2
		stats.CCP += 2
		l, r := tab.MustView(left), tab.MustView(right)
		h1, h2 := bw.hopeless(l, r), bw.hopeless(r, l)
		if h1 && h2 {
			continue
		}
		rows := l.Rows * r.Rows * in.Q.SelBetween(left, right)
		if !h1 {
			op, c := in.M.JoinEvalEntryRows(in.Q, l, r, rows)
			bw.offer(left, right, op, rows, c)
		}
		if !h2 {
			op, c := in.M.JoinEvalEntryRows(in.Q, r, l, rows)
			bw.offer(right, left, op, rows, c)
		}
	}
	return bw.Winner, stats, nil
}
