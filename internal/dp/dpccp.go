package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPCCP is the edge-based enumerator of Moerkotte & Neumann [24]: it walks
// the join graph to emit exactly the csg-cmp pairs, evaluating no invalid
// join pair at all. It is the strongest sequential baseline (Fig. 2's
// bottom-left corner) but its enumeration is inherently order-dependent,
// which is what limits its parallelizability.
func DPCCP(in Input) (*plan.Node, Stats, error) {
	var stats Stats
	prep, err := Prepare(in)
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()

	// DPCCP discovers connected sets while enumerating, so the table is
	// sized by the capped heuristic and grows on demand.
	tab := prep.Seed(plan.TableSizeHint(n))
	stats.ConnectedSets = uint64(n)

	st, err := CostCCPStream(in, tab, in.NewDeadline(), nil)
	stats.Add(st)
	if err != nil {
		return nil, stats, err
	}
	return Finish(in, tab, prep.Leaves, &stats)
}

// CostCCPStream is the costing core of DPCCP, shared with the GPU-model
// scheduler (internal/gpusim): it walks the join graph's csg-cmp pairs in
// the canonical order of [24] — children strictly before parents — costing
// both orientations of every valid pair into the table. The returned
// Stats count two evaluations and two CCPs per unordered pair, and one
// ConnectedSets per newly discovered (non-base) set. onPair, when non-nil,
// is invoked after each pair with the cardinality of the joined set (the
// pair's DP level), for per-level accounting.
func CostCCPStream(in Input, tab *plan.Table, dl *Deadline, onPair func(level int)) (Stats, error) {
	var stats Stats
	ok := ccpPairs(in.Q.G, dl, func(s1, s2 bitset.Mask) {
		// Each unordered pair is emitted once; both orientations are
		// costed, and both count toward the symmetric CCP counter.
		stats.Evaluated += 2
		stats.CCP += 2
		l, r := tab.MustView(s1), tab.MustView(s2)
		union := s1.Union(s2)
		cur, known := tab.Cost(union)
		if !known {
			stats.ConnectedSets++
		}
		if onPair != nil {
			onPair(union.Count())
		}
		// Child-cost lower bound: when both orientations provably cost at
		// least the incumbent (see bestWin.hopeless), skip selectivity and
		// operator costing outright — the stored plan cannot change.
		if known {
			inc := bestWin{Winner: Winner{Found: true, Cost: cur}}
			if inc.hopeless(l, r) && inc.hopeless(r, l) {
				return
			}
		}
		rows := l.Rows * r.Rows * in.Q.SelBetween(s1, s2)
		var bw bestWin
		op, c := in.M.JoinEvalEntryRows(in.Q, l, r, rows)
		bw.offer(s1, s2, op, rows, c)
		op, c = in.M.JoinEvalEntryRows(in.Q, r, l, rows)
		bw.offer(s2, s1, op, rows, c)
		if !known || bw.Cost < cur {
			tab.Put(union, bw.Winner)
		}
	})
	if !ok {
		return stats, dl.Err()
	}
	return stats, nil
}

// CCPCount runs only the csg-cmp enumeration and returns the query's
// CCP-Counter (symmetric count) without building any plans. The Fig. 2 and
// Fig. 4 experiments use it as the per-query lower bound.
func CCPCount(in Input) (uint64, error) {
	dl := in.NewDeadline()
	var count uint64
	ok := ccpPairs(in.Q.G, dl, func(_, _ bitset.Mask) { count += 2 })
	if !ok {
		return count, dl.Err()
	}
	return count, nil
}
