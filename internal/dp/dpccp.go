package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPCCP is the edge-based enumerator of Moerkotte & Neumann [24]: it walks
// the join graph to emit exactly the csg-cmp pairs, evaluating no invalid
// join pair at all. It is the strongest sequential baseline (Fig. 2's
// bottom-left corner) but its enumeration is inherently order-dependent,
// which is what limits its parallelizability.
func DPCCP(in Input) (*plan.Node, Stats, error) {
	var stats Stats
	leaves, err := in.leaves()
	if err != nil {
		return nil, stats, err
	}
	n := in.Q.N()
	dl := NewDeadline(in.Deadline)

	memo := plan.NewMemo(n)
	for i, leaf := range leaves {
		memo.Put(bitset.Single(i), leaf)
	}
	stats.ConnectedSets = uint64(n)

	ok := ccpPairs(in.Q.G, dl, func(s1, s2 bitset.Mask) {
		// Each unordered pair is emitted once; both orientations are
		// costed, and both count toward the symmetric CCP counter.
		stats.Evaluated += 2
		stats.CCP += 2
		l, r := memo.Get(s1), memo.Get(s2)
		union := s1.Union(s2)
		cur := memo.Get(union)
		if cur == nil {
			stats.ConnectedSets++
		}
		rows := l.Rows * r.Rows * in.Q.SelBetween(s1, s2)
		var bw bestWin
		op, c := in.M.JoinEvalRows(in.Q, l, r, rows)
		bw.offer(l, r, op, rows, c)
		op, c = in.M.JoinEvalRows(in.Q, r, l, rows)
		bw.offer(r, l, op, rows, c)
		if cur == nil || bw.cost < cur.Cost {
			memo.Put(union, bw.node(in))
		}
	})
	if !ok {
		return nil, stats, ErrTimeout
	}

	best, err := finish(in, memo)
	return best, stats, err
}

// CCPCount runs only the csg-cmp enumeration and returns the query's
// CCP-Counter (symmetric count) without building any plans. The Fig. 2 and
// Fig. 4 experiments use it as the per-query lower bound.
func CCPCount(in Input) (uint64, error) {
	dl := NewDeadline(in.Deadline)
	var count uint64
	ok := ccpPairs(in.Q.G, dl, func(_, _ bitset.Mask) { count += 2 })
	if !ok {
		return count, ErrTimeout
	}
	return count, nil
}
