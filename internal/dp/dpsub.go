package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPSub is the subset-driven dynamic program of Vance & Maier [34] as
// presented in the paper's Algorithm 1: for every connected set S of each
// size, every one of the 2^|S| subsets S_left is evaluated as a potential
// join pair (S_left, S \ S_left) and checked against the four CCP
// conditions of §2.1. Highly parallelizable, but EvaluatedCounter can
// exceed CCPCounter by orders of magnitude (Fig. 4).
func DPSub(in Input) (*plan.Node, Stats, error) {
	return runLevels(in, EvaluateSetDPSub)
}

// EvaluateSetDPSub performs the per-set body of Algorithm 1 (lines 8-23):
// exhaustive subset enumeration with the four-condition CCP block.
func EvaluateSetDPSub(in Input, memo *plan.Memo, s bitset.Mask, dl *Deadline) (*plan.Node, Stats, error) {
	var stats Stats
	g := in.Q.G
	// Line 8 of Algorithm 1 walks every S_left ⊆ S; the empty and full
	// subsets fail the CCP block immediately but still count.
	stats.Evaluated += uint64(1) << uint(s.Count())
	var bw bestWin
	for lb := s.LowestBit(); !lb.Empty(); lb = lb.NextSubset(s) {
		if dl != nil && dl.Expired() {
			return nil, stats, ErrTimeout
		}
		rb := s.Diff(lb)
		// CCP block (lines 12-16): non-empty, connected sides, disjoint
		// (by construction), edge between them.
		if rb.Empty() {
			continue
		}
		if !g.Connected(lb) {
			continue
		}
		if !g.Connected(rb) {
			continue
		}
		if !g.ConnectedTo(lb, rb) {
			continue
		}
		stats.CCP++
		l, r := memo.Get(lb), memo.Get(rb)
		op, rows, c := in.M.JoinEval(in.Q, l, r)
		bw.offer(l, r, op, rows, c)
	}
	return bw.node(in), stats, nil
}
