package dp

import (
	"repro/internal/bitset"
	"repro/internal/plan"
)

// DPSub is the subset-driven dynamic program of Vance & Maier [34] as
// presented in the paper's Algorithm 1: for every connected set S of each
// size, every one of the 2^|S| subsets S_left is evaluated as a potential
// join pair (S_left, S \ S_left) and checked against the four CCP
// conditions of §2.1. Highly parallelizable, but EvaluatedCounter can
// exceed CCPCounter by orders of magnitude (Fig. 4).
func DPSub(in Input) (*plan.Node, Stats, error) {
	return runLevels(in, EvaluateSetDPSub)
}

// EvaluateSetDPSub performs the per-set body of Algorithm 1 (lines 8-23):
// exhaustive subset enumeration with the four-condition CCP block. Both
// sides' connectivity checks are table lookups: every connected set of a
// smaller size is already stored, so presence doubles as the connectivity
// test and fetches the entry the costing needs in the same probe.
func EvaluateSetDPSub(in Input, tab *plan.Table, s bitset.Mask, dl *Deadline, _ *Scratch) (Winner, Stats, error) {
	var stats Stats
	g := in.Q.G
	// Line 8 of Algorithm 1 walks every S_left ⊆ S; the empty and full
	// subsets fail the CCP block immediately but still count.
	stats.Evaluated += uint64(1) << uint(s.Count())
	var bw bestWin
	for lb := s.LowestBit(); !lb.Empty(); lb = lb.NextSubset(s) {
		if dl != nil && dl.Expired() {
			return bw.Winner, stats, dl.Err()
		}
		rb := s.Diff(lb)
		// CCP block (lines 12-16): non-empty, connected sides, disjoint
		// (by construction), edge between them.
		if rb.Empty() {
			continue
		}
		l, ok := tab.View(lb)
		if !ok {
			continue
		}
		r, ok := tab.View(rb)
		if !ok {
			continue
		}
		if !g.ConnectedTo(lb, rb) {
			continue
		}
		stats.CCP++
		if bw.hopeless(l, r) {
			continue
		}
		op, rows, c := in.M.JoinEvalEntry(in.Q, l, r)
		bw.offer(lb, rb, op, rows, c)
	}
	return bw.Winner, stats, nil
}
