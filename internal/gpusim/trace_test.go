package gpusim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestTraceIntoDecomposesDeviceTime: TraceInto must emit every non-zero
// modeled component as a Sim span, and the span durations must sum to the
// per-device busy time — kernel launches + per-device level transfers +
// warp cycles + global-memory traffic, the same terms SimTimeMS is built
// from (makespan, so busy time is >= it, == for one device).
func TestTraceIntoDecomposesDeviceTime(t *testing.T) {
	q := multiQuery(t, workload.KindCycle, 12, 9)
	in := dp.Input{Q: q, M: cost.DefaultModel()}
	for _, ndev := range []int{1, 3} {
		cfg := DefaultConfig()
		cfg.Devices = ndev
		_, _, gs, err := MPDPGPUMulti(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		tr := obs.NewTrace("gpu")
		gs.TraceInto(tr, nil)
		spans := tr.Spans()
		if len(spans) == 0 {
			t.Fatalf("dev=%d: no spans", ndev)
		}
		var sumMS float64
		for _, s := range spans {
			if !s.Sim {
				t.Errorf("dev=%d: span %s not marked sim", ndev, s.Phase)
			}
			if !strings.HasPrefix(s.Phase, "gpu_") {
				t.Errorf("dev=%d: span %s lacks gpu_ prefix", ndev, s.Phase)
			}
			if s.DurUS <= 0 {
				t.Errorf("dev=%d: span %s duration %g", ndev, s.Phase, s.DurUS)
			}
			sumMS += s.DurUS / 1e3
		}
		for _, want := range []string{obs.PhaseGPULaunch, obs.PhaseGPUTransfer, "gpu_evaluate"} {
			found := false
			for _, s := range spans {
				if s.Phase == want {
					found = true
				}
			}
			if !found {
				t.Errorf("dev=%d: missing span %s in %+v", ndev, want, spans)
			}
		}
		// Busy time >= makespan, and equal for a single device. Spans are
		// stored in whole nanoseconds, so allow one ns of truncation per
		// span on both comparisons.
		slackMS := float64(len(spans)) * 1e-6
		if sumMS < gs.SimTimeMS-slackMS {
			t.Errorf("dev=%d: span sum %.4fms < sim makespan %.4fms", ndev, sumMS, gs.SimTimeMS)
		}
		if ndev == 1 && math.Abs(sumMS-gs.SimTimeMS) > slackMS {
			t.Errorf("dev=1: span sum %.6fms != SimTimeMS %.6fms", sumMS, gs.SimTimeMS)
		}
		// WallSpanSumUS must ignore all of them: modeled time is not wall
		// time.
		if got := tr.WallSpanSumUS(); got != 0 {
			t.Errorf("dev=%d: WallSpanSumUS = %g over sim-only spans, want 0", ndev, got)
		}
	}

	// Nil receivers and nil traces are no-ops, not panics.
	var nilStats *MultiStats
	nilStats.TraceInto(obs.NewTrace(""), nil)
	(&MultiStats{}).TraceInto(nil, nil)
}
