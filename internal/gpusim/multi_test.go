package gpusim

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/workload"
)

func multiQuery(t testing.TB, kind workload.Kind, n int, seed int64) *cost.Query {
	t.Helper()
	q, err := workload.Generate(kind, n, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// TestMultiDeviceCostIdenticalToCPU: the multi-device schedule must return
// plans cost-identical to the sequential CPU enumerator for any device
// count — partitioning only moves work, never changes it.
func TestMultiDeviceCostIdenticalToCPU(t *testing.T) {
	for _, kind := range []workload.Kind{
		workload.KindChain, workload.KindCycle, workload.KindStar, workload.KindClique, workload.KindMB,
	} {
		for _, ndev := range []int{1, 2, 3, 4} {
			n := 10
			q := multiQuery(t, kind, n, int64(ndev))
			in := dp.Input{Q: q, M: cost.DefaultModel()}
			ref, _, err := dp.DPCCP(in)
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Devices = ndev
			p, _, _, err := MPDPGPUMulti(in, cfg)
			if err != nil {
				t.Fatalf("%s/dev=%d: %v", kind, ndev, err)
			}
			if !relClose(p.Cost, ref.Cost) {
				t.Errorf("%s/dev=%d: cost %g, want %g", kind, ndev, p.Cost, ref.Cost)
			}
		}
	}
}

// TestMultiDeviceCountersMatchSingle: the aggregate algorithmic counters of
// a partitioned run must equal the single-device run's — the same pairs are
// examined no matter how many devices split them.
func TestMultiDeviceCountersMatchSingle(t *testing.T) {
	q := multiQuery(t, workload.KindCycle, 14, 3)
	in := dp.Input{Q: q, M: cost.DefaultModel()}
	cfg1 := DefaultConfig()
	cfg1.Devices = 1
	_, st1, gs1, err := MPDPGPUMulti(in, cfg1)
	if err != nil {
		t.Fatal(err)
	}
	cfg4 := DefaultConfig()
	cfg4.Devices = 4
	_, st4, gs4, err := MPDPGPUMulti(in, cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st4 {
		t.Errorf("algorithmic stats diverge: 1 dev %+v, 4 dev %+v", st1, st4)
	}
	if gs1.UnrankedSets != gs4.UnrankedSets || gs1.FilteredSets != gs4.FilteredSets ||
		gs1.CandidatePairs != gs4.CandidatePairs || gs1.ValidPairs != gs4.ValidPairs {
		t.Errorf("aggregate device work diverges:\n1 dev %+v\n4 dev %+v", gs1.Stats, gs4.Stats)
	}
	if len(gs4.PerDevice) != 4 {
		t.Fatalf("PerDevice = %d entries, want 4", len(gs4.PerDevice))
	}
	var launches uint64
	for _, d := range gs4.PerDevice {
		launches += d.KernelLaunches
		if d.Levels != gs4.Levels {
			t.Errorf("device levels %d != run levels %d (every device pays every level's transfer)",
				d.Levels, gs4.Levels)
		}
	}
	if launches != gs4.KernelLaunches {
		t.Errorf("per-device launches sum %d != aggregate %d", launches, gs4.KernelLaunches)
	}
}

// TestMultiDeviceMonotonicScaling: in simulated time, adding devices never
// slows a query down — the per-level wall time is the slowest device's
// share, which can only shrink when the split gets finer.
func TestMultiDeviceMonotonicScaling(t *testing.T) {
	for _, tc := range []struct {
		kind workload.Kind
		n    int
	}{
		{workload.KindChain, 20},
		{workload.KindCycle, 20},
		{workload.KindStar, 18},
		{workload.KindClique, 12},
		{workload.KindMB, 18},
	} {
		q := multiQuery(t, tc.kind, tc.n, 7)
		in := dp.Input{Q: q, M: cost.DefaultModel()}
		prev := math.Inf(1)
		for _, ndev := range []int{1, 2, 4, 8} {
			cfg := DefaultConfig()
			cfg.Devices = ndev
			_, _, gs, err := MPDPGPUMulti(in, cfg)
			if err != nil {
				t.Fatalf("%s/%d dev=%d: %v", tc.kind, tc.n, ndev, err)
			}
			// Strict monotonicity up to float addition order: the d-device
			// level max never exceeds the (d-1)-device one.
			if gs.SimTimeMS > prev*(1+1e-9) {
				t.Errorf("%s/%d: %d devices simulated %.4fms, slower than fewer devices' %.4fms",
					tc.kind, tc.n, ndev, gs.SimTimeMS, prev)
			}
			prev = gs.SimTimeMS
			if u := gs.Utilization(); u <= 0 || u > 1+1e-9 {
				t.Errorf("%s/%d dev=%d: utilization %.3f out of (0,1]", tc.kind, tc.n, ndev, u)
			}
		}
	}
}

// TestMultiDeviceMatchesSingleDeviceModel: with one device on a tree
// query — where both paths run the same real Algorithm 2 evaluator — the
// multi scheduler's totals must agree with the original single-device
// MPDPGPU, and the sim times must stay within a few percent (only float
// summation order differs). General graphs are excluded deliberately: the
// multi path models the evaluate-kernel volume arithmetically and counts
// CCPs in stream order, so only plan costs (not counters) are comparable
// there.
func TestMultiDeviceMatchesSingleDeviceModel(t *testing.T) {
	q := multiQuery(t, workload.KindStar, 16, 5)
	in := dp.Input{Q: q, M: cost.DefaultModel()}
	pS, stS, gsS, err := MPDPGPU(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Devices = 1
	pM, stM, gsM, err := MPDPGPUMulti(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !relClose(pS.Cost, pM.Cost) {
		t.Errorf("cost diverges: single %g, multi %g", pS.Cost, pM.Cost)
	}
	if stS != stM {
		t.Errorf("stats diverge: single %+v, multi %+v", stS, stM)
	}
	if gsS.CandidatePairs != gsM.CandidatePairs || gsS.ValidPairs != gsM.ValidPairs ||
		gsS.UnrankedSets != gsM.UnrankedSets || gsS.GlobalWrites != gsM.GlobalWrites {
		t.Errorf("device work diverges:\nsingle %+v\nmulti  %+v", gsS, gsM.Stats)
	}
	if math.Abs(gsS.SimTimeMS-gsM.SimTimeMS) > 0.05*gsS.SimTimeMS {
		t.Errorf("sim time diverges: single %.4fms, multi(1) %.4fms", gsS.SimTimeMS, gsM.SimTimeMS)
	}
}

// TestBatchSaturatesDevices: a batch of B queries on N devices must give
// every query a device group, return correct plans for all of them, and
// use all N devices when B < N.
func TestBatchSaturatesDevices(t *testing.T) {
	m := cost.DefaultModel()
	mkBatch := func(b int) []dp.Input {
		ins := make([]dp.Input, b)
		for i := range ins {
			ins[i] = dp.Input{Q: multiQuery(t, workload.KindCycle, 10+i%3, int64(i)), M: m}
		}
		return ins
	}

	for _, tc := range []struct {
		batch, devices int
	}{
		{1, 4}, // one query spreads over all 4 devices
		{3, 4}, // groups of 2/1/1
		{8, 4}, // two queries per device, run back-to-back
	} {
		t.Run(fmt.Sprintf("b=%d/n=%d", tc.batch, tc.devices), func(t *testing.T) {
			ins := mkBatch(tc.batch)
			cfg := DefaultConfig()
			cfg.Devices = tc.devices
			out := MPDPGPUBatch(ins, cfg)
			if len(out) != tc.batch {
				t.Fatalf("got %d results, want %d", len(out), tc.batch)
			}
			groupDevs := 0
			for i, r := range out {
				if r.Err != nil {
					t.Fatalf("query %d: %v", i, r.Err)
				}
				ref, _, err := dp.DPCCP(ins[i])
				if err != nil {
					t.Fatal(err)
				}
				if !relClose(r.Plan.Cost, ref.Cost) {
					t.Errorf("query %d: cost %g, want %g", i, r.Plan.Cost, ref.Cost)
				}
				groupDevs += r.GPU.Devices
			}
			if tc.batch < tc.devices && groupDevs != tc.devices {
				t.Errorf("device groups sum to %d, want all %d devices in use", groupDevs, tc.devices)
			}
			if tc.batch >= tc.devices {
				for i, r := range out {
					if r.GPU.Devices != 1 {
						t.Errorf("query %d: got %d devices, want 1 when batch >= devices", i, r.GPU.Devices)
					}
				}
			}
		})
	}
}

// TestBatchBacklogAccumulates: when queries share one device, the later
// query's reported sim time includes the earlier one's — the device is
// busy.
func TestBatchBacklogAccumulates(t *testing.T) {
	m := cost.DefaultModel()
	q := multiQuery(t, workload.KindCycle, 12, 9)
	ins := []dp.Input{{Q: q, M: m}, {Q: q, M: m}}
	cfg := DefaultConfig()
	cfg.Devices = 1
	out := MPDPGPUBatch(ins, cfg)
	if out[0].Err != nil || out[1].Err != nil {
		t.Fatal(out[0].Err, out[1].Err)
	}
	if out[1].GPU.SimTimeMS <= out[0].GPU.SimTimeMS {
		t.Errorf("second query on a shared device simulated %.4fms, want > first's %.4fms (queue wait)",
			out[1].GPU.SimTimeMS, out[0].GPU.SimTimeMS)
	}
}
