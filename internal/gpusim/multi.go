package gpusim

import (
	"sync"

	"repro/internal/bitset"
	"repro/internal/combinat"
	"repro/internal/dp"
	"repro/internal/graph"
	"repro/internal/plan"
)

// MultiStats is the device work model of one optimization (or one batched
// query) executed across several simulated devices. The aggregate Stats
// sums the per-device work; its SimTimeMS is the level-synchronous wall
// time — per level, the devices run concurrently and the level ends when
// the slowest device finishes, so wall time is the sum over levels of the
// per-level maximum, not the sum of device busy times.
type MultiStats struct {
	Stats
	// Devices is the number of simulated devices this run was scheduled on.
	Devices int
	// PerDevice holds each device's own accounting. Each device pays its
	// own kernel launches and its own per-level host↔device transfer; a
	// device's SimTimeMS is its busy time summed over the levels.
	PerDevice []Stats
}

// Utilization returns the mean ratio of device busy time to the run's wall
// time — 1.0 means every device was busy for the whole run.
func (m *MultiStats) Utilization() float64 {
	if m.SimTimeMS <= 0 || len(m.PerDevice) == 0 {
		return 0
	}
	var busy float64
	for i := range m.PerDevice {
		busy += m.PerDevice[i].SimTimeMS
	}
	return busy / (m.SimTimeMS * float64(len(m.PerDevice)))
}

// levelSeconds converts one level's work on one device into seconds: its
// kernel launches, its per-level host↔device round trip, its warp cycles
// and its global-memory transactions.
func levelSeconds(d *Device, launches uint64, cycles float64, writes uint64) float64 {
	return float64(launches)*d.KernelLaunchUS*1e-6 +
		d.LevelTransferUS*1e-6 +
		cycles/d.warpThroughput() +
		float64(writes)/float64(d.WarpSize)*d.GlobalAccessNS*1e-9
}

// levelTotals is one DP level's work, before it is split across devices.
type levelTotals struct {
	sets       uint64 // connected sets of this size
	candidates uint64 // unrank kernel volume: C(n, size)
	evalCand   uint64 // evaluate-kernel candidate volume (MPDP semantics)
	valid      uint64 // costed pairs (both orientations)
}

// devWinner is one (set, winner) pair buffered during the parallel
// evaluate phase and published at the level barrier — the scatter kernel.
type devWinner struct {
	set bitset.Mask
	win dp.Winner
}

// MPDPGPUMulti runs MPDP-GPU across cfg.Devices simulated devices with
// level-partitioned batch scheduling: within each DP level, every device
// takes an even share of the level's candidate index space and executes
// the full unrank → filter → evaluate → prune pipeline over it, paying its
// own kernel launches and its own host↔device transfer per level; the
// level completes when the slowest device does (the level barrier of
// Algorithm 5). Plans are costed for real, so the returned plan is exactly
// optimal and cost-identical to the CPU enumerators.
//
// The two costing paths mirror the CPU dispatch:
//
//   - Tree join graphs evaluate each connected set through the real
//     Algorithm 2 evaluator (output-linear), partitioned across one
//     goroutine per device — multi-device runs are faster in wall time
//     too, not only in simulated time.
//   - General graphs cost the csg-cmp pairs through the output-sensitive
//     CCP stream (dp.CostCCPStream), while the evaluate kernel's
//     candidate volume — the quantity a lockstep warp would burn cycles
//     on, Σ_blocks 2^|B|−2 per set — is derived arithmetically from each
//     set's block decomposition, exactly the count the real per-set
//     evaluator reports (see dp.Counters). This is the package's standard
//     convention: plans and valid pairs are real, lockstep volumes are
//     modeled, so a 40-relation cyclic query returns its exact plan in
//     output-sensitive wall time while the device model still charges the
//     full 2^n lattice.
//
// cfg.Devices <= 1 degenerates to the single-device schedule.
func MPDPGPUMulti(in dp.Input, cfg Config) (*plan.Node, dp.Stats, MultiStats, error) {
	var astats dp.Stats
	ndev := cfg.deviceCount()
	mstats := MultiStats{Devices: ndev, PerDevice: make([]Stats, ndev)}

	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, astats, mstats, err
	}
	n := in.Q.N()
	buckets, err := dp.ConnectedBuckets(in)
	if err != nil {
		return nil, astats, mstats, err
	}
	tab := prep.Seed(dp.BucketCount(buckets))
	astats.ConnectedSets = uint64(dp.BucketCount(buckets))

	totals := make([]levelTotals, n+1)
	for size := 2; size <= n; size++ {
		totals[size].sets = uint64(len(buckets[size]))
		totals[size].candidates = combinat.Binomial(n, size)
	}

	if in.Q.G.IsTree() {
		err = multiEvaluateTree(in, tab, buckets, totals, ndev)
	} else {
		err = multiEvaluateGeneral(in, tab, buckets, totals)
	}
	if err != nil {
		return nil, astats, mstats, err
	}
	for size := 2; size <= n; size++ {
		astats.Evaluated += totals[size].evalCand
		astats.CCP += totals[size].valid
	}

	// Billing: split every level's index spaces evenly across the devices
	// (candidate unranking is index-addressed, so the scheduler partitions
	// work at candidate granularity, not whole sets) and advance the wall
	// clock by the slowest device.
	dev := cfg.device()
	warp := float64(dev.WarpSize)
	var wallSec float64
	for size := 2; size <= n; size++ {
		lt := &totals[size]
		mstats.Levels++
		levelWall := 0.0
		for d := 0; d < ndev; d++ {
			ds := &mstats.PerDevice[d]
			ds.Levels++

			unrank := chunkShare(lt.candidates, ndev, d)
			cand := chunkShare(lt.evalCand, ndev, d)
			valid := chunkShare(lt.valid, ndev, d)
			sets := chunkShare(lt.sets, ndev, d)

			var launches, writes uint64
			var cycles float64
			bill := func(p Phase, c float64) {
				cycles += c
				ds.addCycles(p, c)
			}

			// Unrank + filter kernels over this device's candidate share.
			launches += 2
			ds.UnrankedSets += unrank
			ds.FilteredSets += sets
			bill(PhaseUnrank, float64(unrank)*unrankCyclesPerItem/warp)
			bill(PhaseFilter, float64(unrank)*filterCyclesPerItem/warp)
			writes += sets

			// Evaluate kernel: per-set warp Find-Blocks plus the lockstep
			// candidate volume; CCC compacts the valid-pair costing work.
			launches++
			ds.CandidatePairs += cand
			ds.ValidPairs += valid
			bill(PhaseEvaluate, float64(sets)*blockCyclesPerSet)
			if cfg.CCC {
				bill(PhaseEvaluate, float64(cand)*checkCyclesPerItem/warp+
					float64(valid)*costCyclesPerItem/warp)
			} else {
				bill(PhaseEvaluate, float64(cand)*(checkCyclesPerItem+costCyclesPerItem)/warp)
			}
			if cfg.FusedPrune {
				// In-warp shared-memory prune: one write per surviving set.
				writes += sets
			} else {
				// Separate prune kernel [23]: every found plan spills to
				// global memory, then a reduce-by-key keeps the best.
				launches++
				writes += valid + sets
				bill(PhasePrune, float64(valid)*2/warp)
			}

			// Scatter kernel: publish this device's share of the level.
			launches++
			writes += sets

			ds.KernelLaunches += launches
			ds.GlobalWrites += writes
			sec := levelSeconds(dev, launches, cycles, writes)
			ds.SimTimeMS += sec * 1e3
			if sec > levelWall {
				levelWall = sec
			}
		}
		wallSec += levelWall
	}

	// Fold the per-device totals into the aggregate view.
	for d := 0; d < ndev; d++ {
		ds := &mstats.PerDevice[d]
		mstats.KernelLaunches += ds.KernelLaunches
		mstats.UnrankedSets += ds.UnrankedSets
		mstats.FilteredSets += ds.FilteredSets
		mstats.CandidatePairs += ds.CandidatePairs
		mstats.ValidPairs += ds.ValidPairs
		mstats.GlobalWrites += ds.GlobalWrites
		mstats.WarpCycles += ds.WarpCycles
		for p := 0; p < int(numPhases); p++ {
			mstats.PhaseCycles[p] += ds.PhaseCycles[p]
		}
	}
	mstats.SimTimeMS = wallSec * 1e3

	best, astats, err := dp.Finish(in, tab, prep.Leaves, &astats)
	return best, astats, mstats, err
}

// multiEvaluateTree runs the level-synchronous real evaluation for tree
// join graphs: each level's sets are split into near-equal chunks, one
// goroutine per device, with winners buffered and scattered at the level
// barrier (same-level sets only read strictly smaller entries, so the
// deferred writes preserve the sequential semantics exactly). Counters
// accumulate into totals.
func multiEvaluateTree(in dp.Input, tab *plan.Table, buckets [][]bitset.Mask, totals []levelTotals, ndev int) error {
	scratch := make([]dp.Scratch, ndev)
	winners := make([][]devWinner, ndev)
	errs := make([]error, ndev)
	counts := make([]dp.Stats, ndev)

	for size := 2; size <= in.Q.N(); size++ {
		sets := buckets[size]
		var wg sync.WaitGroup
		for d := 0; d < ndev; d++ {
			lo, hi := chunk(len(sets), ndev, d)
			wg.Add(1)
			go func(d, lo, hi int) {
				defer wg.Done()
				winners[d] = winners[d][:0]
				counts[d] = dp.Stats{}
				errs[d] = nil
				// Each device polls its own deadline and owns its scratch.
				dl := in.NewDeadline()
				for _, s := range sets[lo:hi] {
					win, st, err := dp.EvaluateSetMPDPTree(in, tab, s, dl, &scratch[d])
					if err != nil {
						errs[d] = err
						return
					}
					counts[d].Add(st)
					if win.Found {
						winners[d] = append(winners[d], devWinner{set: s, win: win})
					}
				}
			}(d, lo, hi)
		}
		wg.Wait()
		for d := 0; d < ndev; d++ {
			if errs[d] != nil {
				return errs[d]
			}
			totals[size].evalCand += counts[d].Evaluated
			totals[size].valid += counts[d].CCP
			for _, w := range winners[d] {
				tab.Put(w.set, w.win)
			}
		}
	}
	return nil
}

// multiEvaluateGeneral costs general join graphs through the
// output-sensitive CCP stream (children strictly before parents, so no
// level barrier is needed for correctness) and derives the evaluate
// kernel's per-level candidate volume arithmetically from each set's
// block decomposition — the count the real per-set evaluator reports.
func multiEvaluateGeneral(in dp.Input, tab *plan.Table, buckets [][]bitset.Mask, totals []levelTotals) error {
	dl := in.NewDeadline()
	if _, err := dp.CostCCPStream(in, tab, dl, func(level int) {
		totals[level].valid += 2
	}); err != nil {
		return err
	}
	var bsc graph.BlockScratch
	g := in.Q.G
	for size := 2; size <= in.Q.N(); size++ {
		for _, s := range buckets[size] {
			if dl.Expired() {
				return dl.Err()
			}
			for _, b := range g.FindBlocksInto(s, &bsc) {
				totals[size].evalCand += (uint64(1) << uint(b.Count())) - 2
			}
		}
	}
	return nil
}

// chunk returns the [lo, hi) slice bounds of device d's share of n items
// split near-evenly across ndev devices (first n%ndev chunks are one
// larger).
func chunk(n, ndev, d int) (int, int) {
	base, rem := n/ndev, n%ndev
	lo := d*base + min(d, rem)
	hi := lo + base
	if d < rem {
		hi++
	}
	return lo, hi
}

// chunkShare splits a work count the same way chunk splits a slice.
func chunkShare(total uint64, ndev, d int) uint64 {
	base, rem := total/uint64(ndev), total%uint64(ndev)
	if uint64(d) < rem {
		return base + 1
	}
	return base
}

// BatchResult is one query's outcome within a batched GPU run.
type BatchResult struct {
	Plan  *plan.Node
	Stats dp.Stats
	GPU   MultiStats
	Err   error
}

// MPDPGPUBatch schedules a coalesced batch of independent queries across
// the configured devices so the batch saturates all of them: with B
// queries on N devices, the devices are split into B near-equal groups
// when B < N (each query runs multi-device on its group), and queries
// round-robin onto single devices when B >= N (queries sharing a device
// run back-to-back, which their reported sim times reflect). All groups
// execute concurrently in wall time.
func MPDPGPUBatch(ins []dp.Input, cfg Config) []BatchResult {
	out := make([]BatchResult, len(ins))
	if len(ins) == 0 {
		return out
	}
	ndev := cfg.deviceCount()

	if len(ins) < ndev {
		// Fewer queries than devices: give each query its own device group.
		var wg sync.WaitGroup
		for i := range ins {
			lo, hi := chunk(ndev, len(ins), i)
			gcfg := cfg
			gcfg.Devices = hi - lo
			wg.Add(1)
			go func(i int, gcfg Config) {
				defer wg.Done()
				out[i].Plan, out[i].Stats, out[i].GPU, out[i].Err = MPDPGPUMulti(ins[i], gcfg)
			}(i, gcfg)
		}
		wg.Wait()
		return out
	}

	// More queries than devices: one device per query, one worker goroutine
	// per device draining its round-robin queue sequentially. Queue wait is
	// reflected in each query's sim time by accumulating the device's
	// backlog.
	gcfg := cfg
	gcfg.Devices = 1
	var wg sync.WaitGroup
	for d := 0; d < ndev; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			backlogMS := 0.0
			for i := d; i < len(ins); i += ndev {
				out[i].Plan, out[i].Stats, out[i].GPU, out[i].Err = MPDPGPUMulti(ins[i], gcfg)
				out[i].GPU.SimTimeMS += backlogMS
				backlogMS = out[i].GPU.SimTimeMS
			}
		}(d)
	}
	wg.Wait()
	return out
}
