package gpusim

import (
	"time"

	"repro/internal/obs"
)

// TraceInto decomposes the run's modeled device time into obs Sim spans on
// tr: launch latency, per-level transfers, the per-kernel warp-cycle
// breakdown (gpu_unrank .. gpu_scatter), and global-memory traffic. The
// spans carry modeled time, not wall time — obs marks them Sim and keeps
// them out of the request's wall decomposition; their durations sum to
// the single-device equivalent of the run (per-device busy time), which for
// a multi-device run exceeds the level-synchronous SimTimeMS exactly as
// busy-time exceeds makespan. d nil means the default GTX 1080 model.
func (m *MultiStats) TraceInto(tr *obs.Trace, d *Device) {
	if m == nil || tr == nil {
		return
	}
	if d == nil {
		d = GTX1080()
	}
	simMS := func(phase string, ms float64) {
		if ms > 0 {
			tr.ObserveSim(phase, time.Duration(ms*float64(time.Millisecond)))
		}
	}
	simMS(obs.PhaseGPULaunch, float64(m.KernelLaunches)*d.KernelLaunchUS*1e-3)
	// Every device pays its own per-level round trip (levelSeconds), so the
	// transfer span sums levels across devices; the aggregate Levels field
	// counts lattice levels only once.
	levels := uint64(m.Levels)
	if len(m.PerDevice) > 0 {
		levels = 0
		for i := range m.PerDevice {
			levels += uint64(m.PerDevice[i].Levels)
		}
	}
	simMS(obs.PhaseGPUTransfer, float64(levels)*d.LevelTransferUS*1e-3)
	phaseMS := m.PhaseMS(d)
	for p := 0; p < int(numPhases); p++ {
		simMS("gpu_"+Phase(p).String(), phaseMS[p])
	}
	simMS(obs.PhaseGPUMemory,
		float64(m.GlobalWrites)/float64(d.WarpSize)*d.GlobalAccessNS*1e-6)
}
