package gpusim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/dp"
)

func TestPhaseBreakdownSumsToTotal(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	q := randomQuery(12, 5, rng)
	_, _, gs, err := MPDPGPU(dp.Input{Q: q, M: cost.DefaultModel()}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, c := range gs.PhaseCycles {
		sum += c
	}
	if math.Abs(sum-gs.WarpCycles) > 1e-9*math.Max(1, gs.WarpCycles) {
		t.Errorf("phase cycles %v do not sum to total %v", sum, gs.WarpCycles)
	}
	ms := gs.PhaseMS(GTX1080())
	if ms[PhaseEvaluate] <= 0 {
		t.Error("evaluate phase must accrue time")
	}
	if ms[PhasePrune] != 0 {
		t.Error("fused configuration must not accrue a prune phase")
	}
	// Unfused configuration does accrue prune time.
	_, _, gs2, err := MPDPGPU(dp.Input{Q: q, M: cost.DefaultModel()},
		Config{Device: GTX1080(), FusedPrune: false, CCC: true})
	if err != nil {
		t.Fatal(err)
	}
	if gs2.PhaseMS(GTX1080())[PhasePrune] <= 0 {
		t.Error("unfused configuration must accrue prune-phase time")
	}
}

func TestPhaseNames(t *testing.T) {
	want := []string{"unrank", "filter", "evaluate", "prune", "scatter"}
	for p := PhaseUnrank; p <= PhaseScatter; p++ {
		if p.String() != want[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want[p])
		}
	}
}

func TestDPSizeGPUSkipsUnrankFilter(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	q := randomQuery(10, 4, rng)
	_, _, gs, err := DPSizeGPU(dp.Input{Q: q, M: cost.DefaultModel()}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if gs.PhaseCycles[PhaseUnrank] != 0 || gs.PhaseCycles[PhaseFilter] != 0 {
		t.Error("DPSize-GPU pairs memoized plans directly; no unrank/filter kernels")
	}
	if gs.UnrankedSets != 0 {
		t.Errorf("DPSize-GPU unranked %d sets", gs.UnrankedSets)
	}
}

func TestTeslaT4FasterThanGTX1080OnComputeBoundWork(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	q := randomQuery(14, 8, rng) // cyclic: enough evaluate work to matter
	in := dp.Input{Q: q, M: cost.DefaultModel()}
	_, _, gs1080, err := MPDPGPU(in, Config{Device: GTX1080(), FusedPrune: true, CCC: true})
	if err != nil {
		t.Fatal(err)
	}
	_, _, gsT4, err := MPDPGPU(in, Config{Device: TeslaT4(), FusedPrune: true, CCC: true})
	if err != nil {
		t.Fatal(err)
	}
	// The T4 has twice the SMs: compute cycles should convert to less time.
	if gsT4.WarpCycles != gs1080.WarpCycles {
		t.Errorf("work model must be device-independent: %v vs %v", gsT4.WarpCycles, gs1080.WarpCycles)
	}
	if gsT4.SimTimeMS >= gs1080.SimTimeMS {
		t.Skip("overhead-dominated at this size; compute comparison not meaningful")
	}
}
