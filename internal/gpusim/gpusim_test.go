package gpusim

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/catalog"
	"repro/internal/cost"
	"repro/internal/dp"
	"repro/internal/graph"
)

func randomQuery(n, extraEdges int, rng *rand.Rand) *cost.Query {
	g := graph.RandomConnected(n, extraEdges, rng)
	g2 := graph.New(n)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, math.Pow(10, -1-3*rng.Float64()))
	}
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		r := catalog.NewRelation("r", math.Pow(10, 1+4*rng.Float64()), 60)
		r.HasPKIndex = true
		cat.Add(r)
	}
	return &cost.Query{Cat: cat, G: g2}
}

func starQuery(n int, rng *rand.Rand) *cost.Query {
	g := graph.Star(n)
	g2 := graph.New(n)
	for _, e := range g.Edges {
		g2.AddEdge(e.A, e.B, math.Pow(10, -1-2*rng.Float64()))
	}
	var cat catalog.Catalog
	for i := 0; i < n; i++ {
		cat.Add(catalog.NewRelation("r", math.Pow(10, 2+3*rng.Float64()), 60))
	}
	return &cost.Query{Cat: cat, G: g2}
}

func TestGPUAlgorithmsProduceOptimalPlans(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	m := cost.DefaultModel()
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(8)
		q := randomQuery(n, rng.Intn(n), rng)
		ref, _, err := dp.MPDPGeneral(dp.Input{Q: q, M: m})
		if err != nil {
			t.Fatal(err)
		}
		// Direct calls (kept simple to avoid interface gymnastics).
		p1, st1, _, err := MPDPGPU(dp.Input{Q: q, M: m}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p2, st2, _, err := DPSubGPU(dp.Input{Q: q, M: m}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		p3, st3, _, err := DPSizeGPU(dp.Input{Q: q, M: m}, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range []float64{p1.Cost, p2.Cost, p3.Cost} {
			if math.Abs(p-ref.Cost) > 1e-9*math.Max(1, ref.Cost) {
				t.Errorf("trial %d alg %d: cost %.6f, want %.6f", trial, i, p, ref.Cost)
			}
		}
		if st1.CCP != st2.CCP || st2.CCP != st3.CCP {
			t.Errorf("trial %d: CCP counters differ: %d %d %d", trial, st1.CCP, st2.CCP, st3.CCP)
		}
	}
}

func TestCandidatePairOrdering(t *testing.T) {
	// On a star query: MPDP candidates == CCP (tree); DPSub explodes;
	// DPSize is even worse per the paper.
	rng := rand.New(rand.NewSource(32))
	q := starQuery(14, rng)
	m := cost.DefaultModel()
	_, stM, gsM, err := MPDPGPU(dp.Input{Q: q, M: m}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, stS, gsS, err := DPSubGPU(dp.Input{Q: q, M: m}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, _, gsZ, err := DPSizeGPU(dp.Input{Q: q, M: m}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if stM.Evaluated != stM.CCP {
		t.Errorf("MPDP-GPU on star: Evaluated=%d != CCP=%d", stM.Evaluated, stM.CCP)
	}
	if gsS.CandidatePairs < 10*gsM.CandidatePairs {
		t.Errorf("DPSub candidates %d not ≫ MPDP %d", gsS.CandidatePairs, gsM.CandidatePairs)
	}
	if gsZ.CandidatePairs < gsS.CandidatePairs {
		t.Errorf("DPSize candidates %d < DPSub %d on star", gsZ.CandidatePairs, gsS.CandidatePairs)
	}
	if stS.CCP != stM.CCP {
		t.Errorf("CCP differs: %d vs %d", stS.CCP, stM.CCP)
	}
	if gsM.SimTimeMS >= gsS.SimTimeMS {
		t.Errorf("MPDP-GPU sim time %.3fms not faster than DPSub-GPU %.3fms", gsM.SimTimeMS, gsS.SimTimeMS)
	}
}

func TestEnhancementAblation(t *testing.T) {
	// §7.2.5: fused pruning and CCC each reduce modeled time; CCC matters
	// most when the valid fraction is low (star topology).
	rng := rand.New(rand.NewSource(33))
	q := starQuery(13, rng)
	m := cost.DefaultModel()
	in := dp.Input{Q: q, M: m}

	full := Config{Device: GTX1080(), FusedPrune: true, CCC: true}
	noCCC := Config{Device: GTX1080(), FusedPrune: true, CCC: false}
	noFuse := Config{Device: GTX1080(), FusedPrune: false, CCC: true}

	_, _, gsFull, err := DPSubGPU(in, full)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gsNoCCC, err := DPSubGPU(in, noCCC)
	if err != nil {
		t.Fatal(err)
	}
	_, _, gsNoFuse, err := DPSubGPU(in, noFuse)
	if err != nil {
		t.Fatal(err)
	}
	if gsNoCCC.SimTimeMS <= gsFull.SimTimeMS {
		t.Errorf("disabling CCC should cost time: %.4f <= %.4f", gsNoCCC.SimTimeMS, gsFull.SimTimeMS)
	}
	if gsNoFuse.GlobalWrites <= gsFull.GlobalWrites {
		t.Errorf("unfused prune should add global writes: %d <= %d", gsNoFuse.GlobalWrites, gsFull.GlobalWrites)
	}
	ratio := gsNoCCC.SimTimeMS / gsFull.SimTimeMS
	if ratio > 3.5 {
		t.Errorf("CCC speedup %.2f exceeds the paper's ≤3x envelope", ratio)
	}
}

func TestSmallQueryTransferOverheadDominates(t *testing.T) {
	// For < 10 relations the paper notes GPU variants are not competitive
	// because of per-level transfers; the model must reflect a time floor.
	rng := rand.New(rand.NewSource(34))
	q := starQuery(5, rng)
	_, _, gs, err := MPDPGPU(dp.Input{Q: q, M: cost.DefaultModel()}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	floor := float64(gs.Levels) * GTX1080().LevelTransferUS * 1e-3
	if gs.SimTimeMS < floor {
		t.Errorf("sim time %.4fms below transfer floor %.4fms", gs.SimTimeMS, floor)
	}
}
