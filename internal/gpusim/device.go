// Package gpusim is the repository's substitute for the paper's CUDA
// implementation (§5): a SIMT execution model that accounts for the work a
// GPU would perform — kernel launches, per-level host↔device transfers,
// warp-lockstep cycles including branch divergence, and global-memory
// traffic — and converts it into simulated device time.
//
// The three GPU algorithms of the paper are modeled: DPSize-GPU and
// DPSub-GPU (Meister & Saake [23]) and MPDP-GPU with the paper's two
// enhancements, fused pruning (one global write per set instead of one per
// found plan plus a separate prune kernel) and Collaborative Context
// Collection (CCC [16], which compacts divergent valid-pair work within the
// warp). Plans are costed for real — each GPU algorithm returns exactly the
// optimal plan — while phase work counts are derived either arithmetically
// (unrank/filter over C(n,i) candidate sets) or from the instrumented
// per-set evaluators shared with package dp, so the modeled counts equal
// what the real kernels would execute.
//
// See DESIGN.md ("Hardware/data substitutions") for why this preserves the
// paper's observable behaviour: every speedup the paper reports is a ratio
// of these work counts, not a property of the silicon.
package gpusim

// Device describes the simulated GPU's throughput-relevant parameters.
type Device struct {
	Name     string
	WarpSize int
	// SMCount × SchedulersPerSM warp instructions issue per clock.
	SMCount         int
	SchedulersPerSM int
	ClockGHz        float64

	// KernelLaunchUS is the host-side launch latency per kernel.
	KernelLaunchUS float64
	// LevelTransferUS is the per-DP-level host↔device round trip (the
	// paper's small-query overhead: "data transfers cost between CPU and
	// GPU for every level in the DP lattice").
	LevelTransferUS float64
	// GlobalAccessNS is the cost per 32-wide global memory transaction.
	GlobalAccessNS float64
}

// warpThroughput returns warp-cycles the device retires per second.
func (d *Device) warpThroughput() float64 {
	return float64(d.SMCount*d.SchedulersPerSM) * d.ClockGHz * 1e9
}

// GTX1080 models the NVIDIA GeForce GTX 1080 used in §7.1.
func GTX1080() *Device {
	return &Device{
		Name:            "GTX1080",
		WarpSize:        32,
		SMCount:         20,
		SchedulersPerSM: 4,
		ClockGHz:        1.61,
		KernelLaunchUS:  5,
		LevelTransferUS: 60,
		GlobalAccessNS:  3,
	}
}

// TeslaT4 models the NVIDIA T4 of the AWS g4dn.xlarge instance (Fig. 13).
func TeslaT4() *Device {
	return &Device{
		Name:            "TeslaT4",
		WarpSize:        32,
		SMCount:         40,
		SchedulersPerSM: 4,
		ClockGHz:        1.59,
		KernelLaunchUS:  5,
		LevelTransferUS: 60,
		GlobalAccessNS:  3,
	}
}

// Config selects the device and the §5 implementation enhancements.
type Config struct {
	Device *Device
	// Devices is the simulated device count for the multi-device scheduler
	// (MPDPGPUMulti/MPDPGPUBatch); 0 and 1 both mean a single device. The
	// single-device entry points (MPDPGPU etc.) ignore it.
	Devices int
	// FusedPrune prunes in shared memory at the end of the evaluate kernel
	// (one global write per set); false models the separate prune kernel of
	// [23] with one global write per found plan.
	FusedPrune bool
	// CCC enables Collaborative Context Collection: valid-pair costing work
	// is stashed and executed densely, avoiding warp divergence stalls.
	CCC bool
}

// DefaultConfig is the paper's full MPDP-GPU configuration on the GTX 1080.
func DefaultConfig() Config {
	return Config{Device: GTX1080(), FusedPrune: true, CCC: true}
}

func (c Config) device() *Device {
	if c.Device != nil {
		return c.Device
	}
	return GTX1080()
}

func (c Config) deviceCount() int {
	if c.Devices <= 1 {
		return 1
	}
	return c.Devices
}

// Work-model constants, in warp-cycles per 32-item warp of work.
const (
	unrankCyclesPerItem = 2 // combinadic unrank of one candidate set
	filterCyclesPerItem = 4 // connectivity grow check
	checkCyclesPerItem  = 4 // CCP-condition check of one candidate pair
	costCyclesPerItem   = 8 // cost-model evaluation of one valid pair
	blockCyclesPerSet   = 6 // warp-level Find-Blocks per set [29]
)

// Phase indexes the kernel phases of Algorithm 5.
type Phase int

// Kernel phases, in per-level execution order.
const (
	PhaseUnrank Phase = iota
	PhaseFilter
	PhaseEvaluate
	PhasePrune
	PhaseScatter
	numPhases
)

// String returns the phase name as used in §5.
func (p Phase) String() string {
	switch p {
	case PhaseUnrank:
		return "unrank"
	case PhaseFilter:
		return "filter"
	case PhaseEvaluate:
		return "evaluate"
	case PhasePrune:
		return "prune"
	case PhaseScatter:
		return "scatter"
	}
	return "?"
}

// Stats aggregates the modeled device work of one optimization run.
type Stats struct {
	Levels         int
	KernelLaunches uint64
	UnrankedSets   uint64 // candidate sets unranked across all levels
	FilteredSets   uint64 // sets surviving the connectivity filter
	CandidatePairs uint64 // join pairs examined by the evaluate kernels
	ValidPairs     uint64 // CCP pairs actually costed
	WarpCycles     float64
	GlobalWrites   uint64
	SimTimeMS      float64 // modeled device+host time

	// PhaseCycles breaks WarpCycles down by kernel phase (Algorithm 5).
	PhaseCycles [5]float64
}

// PhaseMS returns the modeled milliseconds spent in each phase's kernels on
// the given device (compute only — launch and transfer overheads are global).
func (s *Stats) PhaseMS(d *Device) [5]float64 {
	var out [5]float64
	for i, c := range s.PhaseCycles {
		out[i] = c / d.warpThroughput() * 1e3
	}
	return out
}

// addCycles accrues warp cycles to both the total and the phase breakdown.
func (s *Stats) addCycles(p Phase, cycles float64) {
	s.WarpCycles += cycles
	s.PhaseCycles[p] += cycles
}

// finalize converts accumulated work into simulated milliseconds.
func (s *Stats) finalize(d *Device) {
	timeSec := float64(s.KernelLaunches)*d.KernelLaunchUS*1e-6 +
		float64(s.Levels)*d.LevelTransferUS*1e-6 +
		s.WarpCycles/d.warpThroughput() +
		float64(s.GlobalWrites)/float64(d.WarpSize)*d.GlobalAccessNS*1e-9
	s.SimTimeMS = timeSec * 1e3
}
