package gpusim

import (
	"repro/internal/combinat"
	"repro/internal/dp"
	"repro/internal/plan"
)

// Algo identifies one of the modeled GPU algorithms.
type Algo int

// Supported GPU algorithms.
const (
	AlgoMPDP Algo = iota
	AlgoDPSub
	AlgoDPSize
)

// String returns the algorithm name as used in the paper's figures.
func (a Algo) String() string {
	switch a {
	case AlgoMPDP:
		return "MPDP (GPU)"
	case AlgoDPSub:
		return "DPSub (GPU)"
	case AlgoDPSize:
		return "DPSize (GPU)"
	}
	return "?"
}

// MPDPGPU runs the paper's MPDP on the simulated device (Algorithm 5 with
// the §5 enhancements) and returns the optimal plan, the algorithmic
// counters and the device work model.
func MPDPGPU(in dp.Input, cfg Config) (*plan.Node, dp.Stats, Stats, error) {
	return run(in, cfg, AlgoMPDP)
}

// DPSubGPU models COMB-GPU DPSub of Meister & Saake [23].
func DPSubGPU(in dp.Input, cfg Config) (*plan.Node, dp.Stats, Stats, error) {
	return run(in, cfg, AlgoDPSub)
}

// DPSizeGPU models H+F-GPU DPSize of Meister & Saake [23].
func DPSizeGPU(in dp.Input, cfg Config) (*plan.Node, dp.Stats, Stats, error) {
	return run(in, cfg, AlgoDPSize)
}

// run executes the level-synchronous GPU workflow of Algorithm 5:
// unrank → filter → evaluate → (prune) → scatter, once per DP level.
// Valid pairs are costed for real through the shared per-set evaluators, so
// the returned plan is exactly the optimal plan; the candidate-pair volume
// of each algorithm (the quantity a physical GPU would burn cycles on) is
// modeled arithmetically and fed to the device-time model.
func run(in dp.Input, cfg Config, algo Algo) (*plan.Node, dp.Stats, Stats, error) {
	var astats dp.Stats
	var gstats Stats
	dev := cfg.device()
	warp := float64(dev.WarpSize)

	prep, err := dp.Prepare(in)
	if err != nil {
		return nil, astats, gstats, err
	}
	n := in.Q.N()
	buckets, err := dp.ConnectedBuckets(in)
	if err != nil {
		return nil, astats, gstats, err
	}
	// The simulator shares the CPU enumerators' SoA table, which is itself
	// the §5 GPU memo layout (open addressing on Murmur3).
	tab := prep.Seed(dp.BucketCount(buckets))
	astats.ConnectedSets = uint64(n)
	dl := in.NewDeadline()
	var sc dp.Scratch

	// Tree join graphs use the Algorithm 2 evaluator (same plans, same
	// counters, no block machinery — exactly like the CPU dispatch).
	evaluate := dp.EvaluateSetMPDP
	if in.Q.G.IsTree() {
		evaluate = dp.EvaluateSetMPDPTree
	}

	// Per-size connected-set counts, needed by the DPSize pair model.
	cnt := make([]uint64, n+1)
	for size := 1; size <= n; size++ {
		cnt[size] = uint64(len(buckets[size]))
	}

	for size := 2; size <= n; size++ {
		gstats.Levels++
		sets := buckets[size]

		switch algo {
		case AlgoMPDP, AlgoDPSub:
			// Unrank kernel: every C(n, size) candidate set gets a thread.
			candidates := combinat.Binomial(n, size)
			gstats.KernelLaunches++
			gstats.UnrankedSets += candidates
			gstats.addCycles(PhaseUnrank, float64(candidates)*unrankCyclesPerItem/warp)
			// Filter kernel (stream compaction of connected sets).
			gstats.KernelLaunches++
			gstats.addCycles(PhaseFilter, float64(candidates)*filterCyclesPerItem/warp)
			gstats.GlobalWrites += uint64(len(sets))
			gstats.FilteredSets += uint64(len(sets))
		case AlgoDPSize:
			// DPSize has no unrank/filter: it pairs memoized plans of
			// complementary sizes directly.
			gstats.FilteredSets += uint64(len(sets))
		}

		// Evaluate kernel: one warp per set (MPDP/DPSub) or a thread per
		// candidate pair (DPSize).
		gstats.KernelLaunches++
		var levelCandidates uint64
		if algo == AlgoDPSize {
			for s1 := 1; s1 < size; s1++ {
				levelCandidates += cnt[s1] * cnt[size-s1]
			}
		}

		var levelValid uint64
		for _, s := range sets {
			astats.ConnectedSets++
			win, st, err := evaluate(in, tab, s, dl, &sc)
			if err != nil {
				return nil, astats, gstats, err
			}
			levelValid += st.CCP
			switch algo {
			case AlgoMPDP:
				levelCandidates += st.Evaluated
				gstats.addCycles(PhaseEvaluate, blockCyclesPerSet) // warp Find-Blocks
			case AlgoDPSub:
				levelCandidates += uint64(1) << uint(size)
			}
			if win.Found {
				tab.Put(s, win)
				if cfg.FusedPrune {
					// In-warp shared-memory prune: one write per set.
					gstats.GlobalWrites++
				}
			}
		}
		astats.Evaluated += levelCandidates
		astats.CCP += levelValid
		gstats.CandidatePairs += levelCandidates
		gstats.ValidPairs += levelValid

		// Divergence model: in lockstep, every candidate stalls for the
		// valid path unless CCC compacts the work.
		if cfg.CCC {
			gstats.addCycles(PhaseEvaluate, float64(levelCandidates)*checkCyclesPerItem/warp+
				float64(levelValid)*costCyclesPerItem/warp)
		} else {
			gstats.addCycles(PhaseEvaluate, float64(levelCandidates)*(checkCyclesPerItem+costCyclesPerItem)/warp)
		}

		if !cfg.FusedPrune {
			// Separate prune kernel [23]: all found plans spill to global
			// memory, then a reduce-by-key keeps the best per set.
			gstats.GlobalWrites += levelValid
			gstats.KernelLaunches++
			gstats.addCycles(PhasePrune, float64(levelValid)*2/warp)
			gstats.GlobalWrites += uint64(len(sets))
		}

		// Scatter kernel: publish the level's best plans to the memo table.
		gstats.KernelLaunches++
		gstats.GlobalWrites += uint64(len(sets))
	}

	gstats.finalize(dev)
	best, astats, err := dp.Finish(in, tab, prep.Leaves, &astats)
	return best, astats, gstats, err
}
